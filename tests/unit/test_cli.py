"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_algorithm_and_n(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--n", "5"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope", "--n", "5"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "orchestra" in out and "k-cycle" in out and "spray" in out

    def test_run_stable_configuration_returns_zero(self, capsys):
        code = main(
            [
                "run",
                "--algorithm", "count-hop",
                "--n", "5",
                "--rho", "0.4",
                "--rounds", "2000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "STABLE" in out

    def test_run_unstable_configuration_returns_two(self):
        code = main(
            [
                "run",
                "--algorithm", "k-clique",
                "--n", "6",
                "--k", "2",
                "--adversary", "single-target",
                "--rho", "0.9",
                "--rounds", "4000",
            ]
        )
        assert code == 2

    def test_run_negotiation_reports_decline_reasons(self, capsys):
        """--negotiation surfaces *why* blocks were declined, one line
        per driver reason, not just the fallback count."""
        code = main(
            [
                "run",
                "--algorithm", "count-hop",
                "--n", "6",
                "--rho", "0.4",
                "--rounds", "1500",
                "--negotiation",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "block_decline_reasons:" in out
        assert "Report substage is adaptive" in out
        # Reasons are prefixed with their occurrence count.
        assert any(
            line.strip()[0].isdigit() and "x " in line
            for line in out.splitlines()
            if "Report substage" in line
        )

    def test_run_oblivious_algorithm_requires_k(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "k-cycle", "--n", "9", "--rounds", "100"])

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--algorithm", "count-hop",
                "--n", "5",
                "--rates", "0.2,0.5",
                "--rounds", "1500",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "series: count-hop" in out
        assert out.count("stable") + out.count("UNSTABLE") >= 2

    @pytest.mark.parallel
    def test_sweep_parallel_matches_serial(self, capsys):
        argv = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.2,0.4,0.6",
            "--rounds", "600",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_sweep_with_cache_dir_reuses_runs(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.3",
            "--rounds", "500",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.pkl"))) == 1
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_sweep_fault_tolerant_flags_match_plain_run(self, capsys, tmp_path):
        base = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.2,0.5",
            "--rounds", "500",
        ]
        assert main(base) == 0
        plain = capsys.readouterr().out
        manifest_path = tmp_path / "manifest.json"
        assert main(
            base
            + [
                "--max-retries", "2",
                "--spec-timeout", "120",
                "--manifest", str(manifest_path),
            ]
        ) == 0
        assert capsys.readouterr().out == plain  # supervision changes nothing
        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["entries"]) == 2
        assert all(e["status"] == "done" for e in manifest["entries"].values())

    def test_sweep_resume_requires_manifest(self):
        with pytest.raises(SystemExit, match="--resume requires --manifest"):
            main(
                [
                    "sweep",
                    "--algorithm", "count-hop",
                    "--n", "4",
                    "--rates", "0.2",
                    "--resume",
                ]
            )

    def test_sweep_resume_skips_quarantined_points(self, capsys, tmp_path):
        manifest_path = tmp_path / "manifest.json"
        argv = [
            "sweep",
            "--algorithm", "count-hop",
            "--n", "4",
            "--rates", "0.3",
            "--rounds", "400",
            "--adversary", "single-target",
            "--max-retries", "0",
            "--manifest", str(manifest_path),
        ]
        # Pre-record the sweep's only point as failed, as an interrupted
        # fault-tolerant run would have; --resume must surface it as a
        # FAILED row (exit 3) without re-executing.
        from repro.cli import _adversary_fragment, _algorithm_fragment
        from repro.sim import FailedResult, SweepManifest
        from repro.sim.specs import RunSpec

        spec = RunSpec.from_fragments(
            _algorithm_fragment("count-hop", 4, None),
            _adversary_fragment("single-target", 0.3, 2.0, None),
            400,
            label="count-hop[rho=0.3]",
        )
        manifest = SweepManifest(manifest_path)
        manifest.record_failed(
            spec,
            FailedResult(
                spec=spec, error="boom", error_type="TransientFault", attempts=1
            ),
        )
        assert main(argv + ["--resume"]) == 3
        captured = capsys.readouterr()
        assert "FAILED after 1 attempt(s): TransientFault: boom" in captured.out
        assert "1 point(s) quarantined" in captured.err

    def test_sweep_help_documents_fault_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        out = capsys.readouterr().out
        for flag in ("--max-retries", "--spec-timeout", "--manifest", "--resume"):
            assert flag in out

    def test_run_seed_changes_stochastic_traffic(self, capsys):
        def run_with_seed(seed):
            code = main(
                [
                    "run",
                    "--algorithm", "count-hop",
                    "--n", "5",
                    "--adversary", "random",
                    "--rho", "0.5",
                    "--rounds", "800",
                    "--seed", seed,
                ]
            )
            assert code == 0
            return capsys.readouterr().out

        assert "seed=3" in run_with_seed("3")
        assert run_with_seed("3") == run_with_seed("3")
        assert run_with_seed("3") != run_with_seed("4")

    def test_list_includes_registry_adversaries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("hotspot", "random-walk", "group-local", "saturating"):
            assert name in out


class TestShardFlag:
    def test_parse_shard_accepts_i_slash_k(self):
        args = build_parser().parse_args(
            ["sweep", "--algorithm", "k-cycle", "--n", "4", "--k", "2",
             "--shard", "1/3"]
        )
        assert args.shard == (1, 3)

    @pytest.mark.parametrize("bad", ["3/3", "-1/3", "0/0", "abc", "1"])
    def test_parse_shard_rejects_invalid(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--algorithm", "k-cycle", "--n", "4", "--k", "2",
                 "--shard", bad]
            )

    def test_sweep_shards_union_to_the_full_sweep(self, capsys, tmp_path):
        """CLI shards against a shared cache cover exactly the full sweep."""
        base = [
            "sweep", "--algorithm", "k-cycle", "--n", "4", "--k", "2",
            "--rates", "0.1,0.2,0.3,0.4,0.5", "--rounds", "400",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        rows = []
        for i in range(2):
            assert main(base + ["--shard", f"{i}/2"]) == 0
            out = capsys.readouterr().out
            rows.extend(
                line for line in out.splitlines() if line.strip().startswith("0.")
            )
        assert main(base) == 0  # full sweep: every point is a cache hit
        full_out = capsys.readouterr().out
        full_rows = [
            line for line in full_out.splitlines() if line.strip().startswith("0.")
        ]
        assert sorted(rows) == sorted(full_rows)
        assert len(full_rows) == 5


class TestDistributedCommands:
    def test_worker_requires_queue_dir_or_server(self):
        # --queue-dir and --server are mutually exclusive and exactly one
        # is required; the check lives in the command (both flags parse).
        with pytest.raises(SystemExit):
            main(["worker"])
        with pytest.raises(SystemExit):
            main(["worker", "--queue-dir", "q", "--server", "http://x:1"])

    def test_serve_requires_queue_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_submit_requires_server(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit", "--algorithm", "k-cycle", "--n", "4", "--k", "2"]
            )

    def test_worker_drains_an_enqueued_sweep(self, capsys, tmp_path, monkeypatch):
        from repro.sim import ResultCache, RunSpec, WorkQueue, spec_fragment

        # The real CLI marks its whole process a disposable worker (so
        # kill coins os._exit it); running in-process here, that flag
        # would leak into every later test in this pytest process.
        monkeypatch.setattr("repro.cli.mark_worker_process", lambda: None)
        queue = WorkQueue(
            tmp_path / "q", lease_ttl=5.0, cache_dir=tmp_path / "cache"
        )
        specs = [
            RunSpec.from_fragments(
                spec_fragment("k-cycle", n=4, k=2),
                spec_fragment("spray", rho=0.2, beta=1.5),
                300,
            )
        ]
        queue.enqueue(specs, shard_size=1)
        code = main(
            ["worker", "--queue-dir", str(tmp_path / "q"),
             "--poll", "0.05", "--exit-when-drained"]
        )
        assert code == 0
        assert "1/1 shards" in capsys.readouterr().err
        assert queue.drained()
        assert ResultCache(tmp_path / "cache").get(specs[0]) is not None

    def test_submit_round_trips_through_a_live_server(self, capsys, tmp_path):
        import threading

        from repro.sim import SweepService, make_server

        service = SweepService(
            tmp_path / "q", tmp_path / "cache",
            shard_size=2, fallback_after=0.2, poll=0.05,
        )
        server = make_server(service, "127.0.0.1", 0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            code = main(
                ["submit",
                 "--server", f"http://127.0.0.1:{server.server_address[1]}",
                 "--algorithm", "k-cycle", "--n", "4", "--k", "2",
                 "--rates", "0.1,0.3", "--rounds", "300"]
            )
        finally:
            service.close()
            server.shutdown()
            server.server_close()
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("STABLE") + out.count("UNSTABLE") == 2
