"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_algorithm_and_n(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--n", "5"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "nope", "--n", "5"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "orchestra" in out and "k-cycle" in out and "spray" in out

    def test_run_stable_configuration_returns_zero(self, capsys):
        code = main(
            [
                "run",
                "--algorithm", "count-hop",
                "--n", "5",
                "--rho", "0.4",
                "--rounds", "2000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "STABLE" in out

    def test_run_unstable_configuration_returns_two(self):
        code = main(
            [
                "run",
                "--algorithm", "k-clique",
                "--n", "6",
                "--k", "2",
                "--adversary", "single-target",
                "--rho", "0.9",
                "--rounds", "4000",
            ]
        )
        assert code == 2

    def test_run_oblivious_algorithm_requires_k(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "k-cycle", "--n", "9", "--rounds", "100"])

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--algorithm", "count-hop",
                "--n", "5",
                "--rates", "0.2,0.5",
                "--rounds", "1500",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "series: count-hop" in out
        assert out.count("stable") + out.count("UNSTABLE") >= 2
