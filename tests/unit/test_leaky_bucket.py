"""Unit tests for the leaky-bucket adversary constraint."""

import pytest

from repro.adversary.leaky_bucket import (
    AdversaryType,
    LeakyBucketConstraint,
    LeakyBucketViolation,
    verify_injection_record,
)


class TestAdversaryType:
    def test_valid_ranges(self):
        t = AdversaryType(rho=0.5, beta=2.0)
        assert t.burstiness == 2
        assert t.window_bound(10) == pytest.approx(7.0)

    def test_rate_one_burstiness(self):
        assert AdversaryType(rho=1.0, beta=1.0).burstiness == 2

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            AdversaryType(rho=0.0, beta=1.0)
        with pytest.raises(ValueError):
            AdversaryType(rho=1.5, beta=1.0)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            AdversaryType(rho=0.5, beta=-1.0)

    def test_window_bound_of_empty_interval(self):
        assert AdversaryType(rho=0.5, beta=2.0).window_bound(0) == 0.0


class TestLeakyBucketConstraint:
    def test_first_round_budget_is_burstiness(self):
        c = LeakyBucketConstraint(AdversaryType(rho=0.5, beta=2.0))
        assert c.budget() == 2

    def test_full_rate_sustained_at_rho_one(self):
        c = LeakyBucketConstraint(AdversaryType(rho=1.0, beta=1.0))
        for _ in range(100):
            assert c.budget() >= 1
            c.consume(1)
        assert c.total_injected == 100

    def test_budget_refills_while_idle(self):
        c = LeakyBucketConstraint(AdversaryType(rho=0.25, beta=2.0))
        c.consume(2)  # drain the burst
        assert c.budget() == 0
        for _ in range(4):
            c.consume(0)
        assert c.budget() >= 1

    def test_overconsumption_raises(self):
        c = LeakyBucketConstraint(AdversaryType(rho=0.5, beta=1.0))
        with pytest.raises(LeakyBucketViolation):
            c.consume(5)

    def test_negative_count_rejected(self):
        c = LeakyBucketConstraint(AdversaryType(rho=0.5, beta=1.0))
        with pytest.raises(ValueError):
            c.consume(-1)

    def test_budget_capped_by_burst(self):
        c = LeakyBucketConstraint(AdversaryType(rho=0.5, beta=2.0))
        for _ in range(100):
            c.consume(0)
        # Idling forever cannot accumulate more than the one-round burstiness.
        assert c.budget() == 2

    def test_peek_after_skip(self):
        c = LeakyBucketConstraint(AdversaryType(rho=0.5, beta=2.0))
        c.consume(2)
        # Skipping zero rounds peeks the current budget.
        assert c.peek_after_skip(0) == c.budget()
        assert c.peek_after_skip(2) >= c.budget()
        # Idling long enough refills to the one-round burstiness cap.
        assert c.peek_after_skip(1000) == 2


class TestVerifyInjectionRecord:
    def test_valid_record_passes(self):
        t = AdversaryType(rho=0.5, beta=1.0)
        assert verify_injection_record([1, 0, 1, 0, 1, 0], t)

    def test_violating_record_fails(self):
        t = AdversaryType(rho=0.5, beta=1.0)
        assert not verify_injection_record([2, 2, 2], t, strict=False)
        with pytest.raises(LeakyBucketViolation):
            verify_injection_record([2, 2, 2], t, strict=True)

    def test_online_tracker_agrees_with_reference_check(self):
        t = AdversaryType(rho=0.3, beta=2.0)
        c = LeakyBucketConstraint(t)
        counts = []
        # A greedy adversary injecting its full budget each round is legal.
        for _ in range(50):
            b = c.budget()
            counts.append(b)
            c.consume(b)
        assert verify_injection_record(counts, t)
