"""Unit tests for the round engine: arbitration, delivery, checks."""

import pytest

from repro.adversary import NoInjectionAdversary, SingleTargetAdversary
from repro.channel.engine import EngineConfig, RoundEngine
from repro.channel.energy import EnergyCapViolation
from repro.channel.feedback import ChannelOutcome
from repro.channel.message import Message
from repro.channel.packet import PacketFactory
from repro.metrics.collector import MetricsCollector


def build_engine(controllers, adversary=None, **config_kwargs):
    adversary = adversary or NoInjectionAdversary().bind(len(controllers))
    config = EngineConfig(record_trace=True, **config_kwargs)
    return RoundEngine(controllers, adversary, MetricsCollector(), config)


class TestArbitration:
    def test_silent_round(self, scripted_controller_cls):
        controllers = [scripted_controller_cls(i, 3) for i in range(3)]
        engine = build_engine(controllers)
        event = engine.step()
        assert event.outcome is ChannelOutcome.SILENCE
        for ctrl in controllers:
            assert ctrl.feedback_log[-1].silent

    def test_single_transmission_heard_by_awake_stations(
        self, scripted_controller_cls, make_packet
    ):
        packet = make_packet(destination=2)
        msg = Message(sender=0, packet=packet)
        controllers = [
            scripted_controller_cls(0, 3, transmissions={0: msg}),
            scripted_controller_cls(1, 3, awake_rounds={0: False}),
            scripted_controller_cls(2, 3),
        ]
        engine = build_engine(controllers)
        # The packet was hand-crafted rather than injected by the adversary;
        # register it so the delivery bookkeeping has a matching record.
        engine.collector.record_injection(packet, 0)
        event = engine.step()
        assert event.outcome is ChannelOutcome.HEARD
        assert event.delivered_packet is packet
        # Station 1 was asleep: no feedback at all.
        assert controllers[1].feedback_log == []
        # Transmitter hears its own message.
        assert controllers[0].heard[0][1] is msg
        assert controllers[2].heard[0][1] is msg

    def test_collision_nobody_hears(self, scripted_controller_cls, make_packet):
        msg_a = Message(sender=0, packet=make_packet(2))
        msg_b = Message(sender=1, packet=make_packet(2))
        controllers = [
            scripted_controller_cls(0, 3, transmissions={0: msg_a}),
            scripted_controller_cls(1, 3, transmissions={0: msg_b}),
            scripted_controller_cls(2, 3),
        ]
        engine = build_engine(controllers)
        event = engine.step()
        assert event.outcome is ChannelOutcome.COLLISION
        assert event.delivered_packet is None
        assert all(f.collision for c in controllers for f in c.feedback_log)

    def test_delivery_requires_destination_awake(
        self, scripted_controller_cls, make_packet
    ):
        packet = make_packet(destination=2)
        msg = Message(sender=0, packet=packet)
        controllers = [
            scripted_controller_cls(0, 3, transmissions={0: msg}),
            scripted_controller_cls(1, 3),
            scripted_controller_cls(2, 3, awake_rounds={0: False}),
        ]
        engine = build_engine(controllers)
        event = engine.step()
        assert event.outcome is ChannelOutcome.HEARD
        assert event.delivered_packet is None
        assert engine.collector.delivered_count == 0


class TestEngineChecks:
    def test_controllers_must_be_indexed_by_station(self, scripted_controller_cls):
        controllers = [scripted_controller_cls(1, 2), scripted_controller_cls(0, 2)]
        with pytest.raises(ValueError):
            build_engine(controllers)

    def test_empty_controller_list_rejected(self):
        with pytest.raises(ValueError):
            build_engine([])

    def test_sender_spoofing_rejected(self, scripted_controller_cls, make_packet):
        msg = Message(sender=1, packet=make_packet(2))
        controllers = [
            scripted_controller_cls(0, 3, transmissions={0: msg}),
            scripted_controller_cls(1, 3),
            scripted_controller_cls(2, 3),
        ]
        engine = build_engine(controllers)
        with pytest.raises(ValueError, match="claiming sender"):
            engine.step()

    def test_energy_cap_enforced(self, scripted_controller_cls):
        controllers = [scripted_controller_cls(i, 3) for i in range(3)]
        engine = build_engine(controllers, energy_cap=2, enforce_energy_cap=True)
        with pytest.raises(EnergyCapViolation):
            engine.step()

    def test_energy_cap_recorded_only(self, scripted_controller_cls):
        controllers = [scripted_controller_cls(i, 3) for i in range(3)]
        engine = build_engine(controllers, energy_cap=2, enforce_energy_cap=False)
        engine.step()
        assert engine.energy.violations == 1

    def test_plain_packet_check(self, scripted_controller_cls):
        msg = Message(sender=0, control={"count": 1})
        controllers = [
            scripted_controller_cls(0, 3, transmissions={0: msg}),
            scripted_controller_cls(1, 3),
            scripted_controller_cls(2, 3),
        ]
        engine = build_engine(controllers, check_plain_packet=True)
        with pytest.raises(ValueError, match="plain-packet"):
            engine.step()

    def test_control_bit_limit(self, scripted_controller_cls):
        msg = Message(sender=0, control={"value": 2**40})
        controllers = [
            scripted_controller_cls(0, 3, transmissions={0: msg}),
            scripted_controller_cls(1, 3),
            scripted_controller_cls(2, 3),
        ]
        engine = build_engine(controllers, max_control_bits=8)
        with pytest.raises(ValueError, match="control bits"):
            engine.step()


class TestInjectionPath:
    def test_injections_reach_controller_and_collector(self, scripted_controller_cls):
        controllers = [scripted_controller_cls(i, 3) for i in range(3)]
        adversary = SingleTargetAdversary(rho=1.0, beta=1.0, source=1, destination=2)
        adversary.bind(3, PacketFactory())
        engine = build_engine(controllers, adversary)
        engine.run(5)
        assert len(controllers[1].injected) == engine.collector.injected_count > 0
        assert all(p.destination == 2 for p in controllers[1].injected)

    def test_view_tracks_awake_history(self, scripted_controller_cls):
        controllers = [
            scripted_controller_cls(0, 2, awake_rounds=lambda t: t % 2 == 0),
            scripted_controller_cls(1, 2),
        ]
        engine = build_engine(controllers)
        engine.run(4)
        assert engine.view.awake_history[0] == (0, 1)
        assert engine.view.awake_history[1] == (1,)
        assert engine.view.station_on_rounds(0) == 2
        assert engine.view.station_on_rounds(1) == 4
