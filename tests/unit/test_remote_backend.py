"""Unit tests for the remote cache backend, cache endpoints and remote queue.

Exercises the tentpole surfaces in isolation: the
:class:`RemoteCacheBackend` round-trip against a live ``repro serve``
process, graceful degradation (spill on an unreachable server, spill
reads, reconciliation on recovery), duplicate concurrent PUT
convergence, the server-side quarantine of corrupt entries, the local
quarantine race, the ndjson stream's mid-stream disconnect behaviour,
and the :class:`RemoteWorkQueue` lease protocol (claim / heartbeat /
complete / 410 on a lost lease).
"""

import contextlib
import io
import json
import socket
import threading
import time
import urllib.request
from urllib import error as urlerror

import pytest

from repro.sim import (
    RemoteCacheBackend,
    RemoteWorkQueue,
    ResultCache,
    RunSpec,
    SweepService,
    execute_spec,
    make_server,
    spec_fragment,
)
from repro.sim.netclient import ResilientClient, RpcPolicy
from repro.sim.queue import LeaseLostError, status_record
from repro.sim.service import submit_batch, wait_for_job


def _spec(i=0, rounds=200):
    return RunSpec.from_fragments(
        spec_fragment("k-cycle", n=4, k=2),
        spec_fragment("spray", rho=round(0.2 + 0.1 * i, 2), beta=1.5),
        rounds,
        label=f"u{i}",
    )


def _dead_port() -> int:
    """A localhost port with provably nothing listening on it."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


_FAST = RpcPolicy(
    timeout=5.0, max_attempts=2, backoff_base=0.001, backoff_cap=0.01,
    breaker_threshold=100,
)


@pytest.fixture()
def live_server(tmp_path):
    service = SweepService(
        tmp_path / "queue",
        tmp_path / "server-cache",
        lease_ttl=5.0,
        shard_size=1,
        fallback_after=60.0,
        poll=0.05,
    )
    server = make_server(service, "127.0.0.1", 0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield service, base
    service.close()
    server.shutdown()
    server.server_close()


class TestRemoteBackendRoundTrip:
    def test_put_get_bit_identical_through_result_cache(self, tmp_path, live_server):
        service, base = live_server
        spec = _spec()
        result = execute_spec(spec)
        remote = ResultCache(
            backend=RemoteCacheBackend(
                base, policy=_FAST, spill_dir=tmp_path / "spill"
            )
        )
        assert remote.get(spec) is None  # clean miss over the wire
        remote.put(spec, result)
        assert spec in remote
        hit = remote.get(spec)
        assert hit is not None
        assert hit.summary == result.summary
        # The server's own (local) cache holds the same entry.
        assert service.cache.get(spec).summary == result.summary
        # And a second, unrelated client sees it too: no shared filesystem.
        other = ResultCache(
            backend=RemoteCacheBackend(
                base, policy=_FAST, spill_dir=tmp_path / "spill2"
            )
        )
        assert other.get(spec).summary == result.summary

    def test_url_normalisation_accepts_cache_prefix(self, tmp_path, live_server):
        _, base = live_server
        backend = RemoteCacheBackend(f"{base}/api/cache", policy=_FAST)
        assert backend.base_url == f"{base}/api/cache"
        assert RemoteCacheBackend(base, policy=_FAST).base_url == backend.base_url

    def test_bad_key_is_rejected_not_served(self, live_server):
        _, base = live_server
        with pytest.raises(urlerror.HTTPError) as info:
            urllib.request.urlopen(f"{base}/api/cache/not-a-hash", timeout=5)
        assert info.value.code == 400

    def test_server_quarantines_corrupt_entries_on_read(self, tmp_path, live_server):
        service, base = live_server
        spec = _spec()
        remote = ResultCache(
            backend=RemoteCacheBackend(
                base, policy=_FAST, spill_dir=tmp_path / "spill"
            )
        )
        remote.put(spec, execute_spec(spec))
        # Corrupt the server's on-disk payload behind its back.
        payload_path = service.cache.backend.payload_path(spec.spec_hash())
        data = payload_path.read_bytes()
        payload_path.write_bytes(data[: len(data) // 2])
        assert remote.get(spec) is None  # read degrades to a miss
        assert service.cache_counters["quarantined"] >= 1
        assert service.cache.backend.quarantined_entries() >= 1


class TestGracefulDegradation:
    def test_store_spills_when_server_unreachable(self, tmp_path):
        spec = _spec()
        result = execute_spec(spec)
        backend = RemoteCacheBackend(
            f"http://127.0.0.1:{_dead_port()}",
            policy=_FAST,
            spill_dir=tmp_path / "spill",
        )
        cache = ResultCache(backend=backend)
        cache.put(spec, result)  # must not raise
        assert backend.spilled == 1
        assert cache.pending_spill() == {spec.spec_hash()}
        # Reads are served from the spill, bit-identically.
        hit = cache.get(spec)
        assert hit is not None and hit.summary == result.summary
        assert backend.spill_hits == 1
        assert spec in cache  # contains() falls back to the spill too
        stats = cache.rpc_stats()
        assert stats["spilled"] == 1 and stats["spill_pending"] == 1

    def test_unreachable_get_is_a_miss_not_an_error(self, tmp_path):
        backend = RemoteCacheBackend(
            f"http://127.0.0.1:{_dead_port()}",
            policy=_FAST,
            spill_dir=tmp_path / "spill",
        )
        cache = ResultCache(backend=backend)
        assert cache.get(_spec()) is None
        assert backend.degraded_reads == 1
        assert cache.misses == 1

    def test_flush_spill_reconciles_to_recovered_server(self, tmp_path, live_server):
        service, base = live_server
        spec = _spec()
        result = execute_spec(spec)
        # Spill while the server is "down"...
        down = RemoteCacheBackend(
            f"http://127.0.0.1:{_dead_port()}",
            policy=_FAST,
            spill_dir=tmp_path / "spill",
        )
        ResultCache(backend=down).put(spec, result)
        assert down.pending_spill()
        # ...then recover by pointing a backend at the live server with
        # the same spill directory (the worker's respawn path).
        up = RemoteCacheBackend(base, policy=_FAST, spill_dir=tmp_path / "spill")
        flushed = up.flush_spill()
        assert flushed == 1 and up.reconciled == 1
        assert not up.pending_spill()
        assert service.cache.get(spec).summary == result.summary

    def test_successful_store_drains_pending_spill(self, tmp_path, live_server):
        service, base = live_server
        stranded, fresh = _spec(0), _spec(1)
        stranded_result = execute_spec(stranded)
        down = RemoteCacheBackend(
            f"http://127.0.0.1:{_dead_port()}",
            policy=_FAST,
            spill_dir=tmp_path / "spill",
        )
        ResultCache(backend=down).put(stranded, stranded_result)
        up = ResultCache(
            backend=RemoteCacheBackend(
                base, policy=_FAST, spill_dir=tmp_path / "spill"
            )
        )
        up.put(fresh, execute_spec(fresh))  # a store that reaches the server
        assert not up.pending_spill()  # ...sweeps the stranded entry along
        assert service.cache.get(stranded).summary == stranded_result.summary

    def test_circuit_close_hook_triggers_reconciliation(self, tmp_path, live_server):
        service, base = live_server
        spec = _spec()
        result = execute_spec(spec)
        backend = RemoteCacheBackend(base, policy=_FAST, spill_dir=tmp_path / "spill")
        # Park an entry in the spill, open the breaker, then let a probe
        # close it: the on_close hook must drain the spill.
        cache = ResultCache(backend=backend)
        down = RemoteCacheBackend(
            f"http://127.0.0.1:{_dead_port()}",
            policy=_FAST,
            spill_dir=tmp_path / "spill",
        )
        ResultCache(backend=down).put(spec, result)
        assert backend.pending_spill()
        backend.client.breaker.record_failure()
        backend.client.breaker.state = "open"
        backend.client.breaker._opened_at = -1e9  # reset window long elapsed
        assert cache.get(_spec(1)) is None  # the half-open probe succeeds (404)
        assert backend.client.breaker.state == "closed"
        assert not backend.pending_spill()  # on_close reconciled the spill
        assert backend.reconciled == 1
        assert service.cache.get(spec).summary == result.summary


class TestDuplicateConcurrentPut:
    def test_racing_remote_puts_converge_on_one_valid_entry(
        self, tmp_path, live_server
    ):
        service, base = live_server
        spec = _spec()
        result = execute_spec(spec)
        barrier = threading.Barrier(2)
        errors = []

        def put(i):
            cache = ResultCache(
                backend=RemoteCacheBackend(
                    base, policy=_FAST, spill_dir=tmp_path / f"spill{i}"
                )
            )
            barrier.wait()
            try:
                cache.put(spec, result)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=put, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert service.cache_counters["puts"] == 2  # both writes accepted
        # One valid, readable entry survives.
        assert service.cache.get(spec).summary == result.summary
        reader = ResultCache(
            backend=RemoteCacheBackend(base, policy=_FAST, spill_dir=tmp_path / "r")
        )
        assert reader.get(spec).summary == result.summary


class TestLocalQuarantineRace:
    def test_racing_quarantines_never_raise(self, tmp_path):
        spec = _spec()
        first = ResultCache(tmp_path / "cache")
        second = ResultCache(tmp_path / "cache")
        first.put(spec, execute_spec(spec))
        payload = first._payload_path(spec)
        payload.write_bytes(payload.read_bytes()[:40])  # corrupt it
        barrier = threading.Barrier(2)
        outcomes = []

        def read(cache):
            barrier.wait()
            outcomes.append(cache.get(spec))  # must not raise, ever

        threads = [
            threading.Thread(target=read, args=(c,)) for c in (first, second)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes == [None, None]
        # The entry was quarantined exactly once between the two racers.
        assert first.quarantined_entries() == 1
        assert first.quarantined + second.quarantined >= 1

    def test_quarantine_of_vanished_entry_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        # Neither payload nor sidecar exists: the loser's rename path.
        cache.backend.quarantine("0" * 64)  # must not raise


class TestStreamDisconnect:
    def test_mid_stream_disconnect_is_quiet_and_harmless(self, live_server):
        service, base = live_server
        specs = [_spec(i) for i in range(2)]
        job = service.submit([s.to_dict() for s in specs])
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            # Open the ndjson stream raw, read one line, hang up.
            host, port = base.replace("http://", "").split(":")
            with socket.create_connection((host, int(port)), timeout=5) as sock:
                sock.sendall(
                    f"GET /api/jobs/{job.job_id}/stream HTTP/1.1\r\n"
                    f"Host: {host}\r\nConnection: close\r\n\r\n".encode()
                )
                sock.recv(1024)  # headers + first snapshot line
            # Give the handler a poll cycle to hit the broken pipe.
            time.sleep(0.3)
            # The service (and later subscribers) are unaffected: local
            # fallback still completes the job.
            service.fallback_after = 0.0
            assert service.wait(job, timeout=120)
        assert "Traceback" not in stderr.getvalue()
        snap = wait_for_job(base, job.job_id, timeout=30)
        assert snap["complete"] is True

    def test_wait_for_job_times_out_cleanly_on_dead_server(self):
        base = f"http://127.0.0.1:{_dead_port()}"
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            wait_for_job(base, "job-1", timeout=1.0, read_timeout=0.5)
        assert time.monotonic() - start < 10  # bounded, not wedged


class TestSubmitBatchStartupRace:
    def test_submit_retries_connection_refused_until_server_up(self, tmp_path):
        spec = _spec()
        port = _dead_port()
        service = SweepService(
            tmp_path / "queue",
            tmp_path / "cache",
            fallback_after=0.1,
            poll=0.05,
        )
        server_box = []

        def start_later():
            time.sleep(0.4)
            server = make_server(service, "127.0.0.1", port)
            server_box.append(server)
            server.serve_forever()

        thread = threading.Thread(target=start_later, daemon=True)
        thread.start()
        try:
            patient = ResilientClient(
                RpcPolicy(
                    timeout=5.0,
                    max_attempts=10,
                    backoff_base=0.1,
                    backoff_cap=0.5,
                    breaker_threshold=100,
                )
            )
            job = submit_batch(
                f"http://127.0.0.1:{port}", [spec.to_dict()], client=patient
            )
            assert job["total"] == 1
        finally:
            deadline = time.monotonic() + 5
            while not server_box and time.monotonic() < deadline:
                time.sleep(0.05)
            service.close()
            if server_box:
                server_box[0].shutdown()
                server_box[0].server_close()


class TestRemoteQueueProtocol:
    def test_claim_heartbeat_complete_lifecycle(self, live_server):
        service, base = live_server
        spec = _spec()
        job = service.submit([spec.to_dict()], shard_size=1)
        queue = RemoteWorkQueue(base, policy=_FAST)
        assert queue.ready()
        lease = queue.claim("unit-worker")
        assert lease is not None
        assert lease.takeovers == 0
        assert [s.spec_hash() for s in lease.specs] == [spec.spec_hash()]
        lease.heartbeat()  # renews without error
        counts = queue.counts()
        assert counts["leased"] == 1
        # Publish the result out-of-band (the worker's cache PUT) and
        # complete the lease.
        result = execute_spec(spec)
        remote_cache = ResultCache(backend=RemoteCacheBackend(base, policy=_FAST))
        remote_cache.put(spec, result)
        assert lease.complete(
            [status_record(spec, result)], extra={"requests": 3}
        )
        assert queue.drained()
        assert service.wait(job, timeout=60)
        assert job.snapshot()["rpc"].get("requests") == 3

    def test_spent_token_returns_410_and_lost_lease(self, live_server):
        service, base = live_server
        spec = _spec()
        service.submit([spec.to_dict()], shard_size=1)
        queue = RemoteWorkQueue(base, policy=_FAST)
        lease = queue.claim("unit-worker")
        result = execute_spec(spec)
        ResultCache(backend=RemoteCacheBackend(base, policy=_FAST)).put(spec, result)
        assert lease.complete([status_record(spec, result)])
        # The token is spent: every further transition reads as lost.
        with pytest.raises(LeaseLostError):
            lease.heartbeat()
        assert lease.lost
        twin = queue.claim("unit-worker")  # nothing left to claim
        assert twin is None

    def test_unreachable_server_degrades_not_lies(self):
        queue = RemoteWorkQueue(f"http://127.0.0.1:{_dead_port()}", policy=_FAST)
        assert queue.claim("w") is None
        assert queue.drained() is False  # never a false "all done"
        assert queue.ready() is False
