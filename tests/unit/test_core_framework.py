"""Unit tests for the algorithm framework: properties, registry, QueueingController."""

import pytest

from repro.channel.feedback import ChannelOutcome, Feedback
from repro.channel.message import Message
from repro.core.algorithm import AlgorithmProperties
from repro.core.controller import QueueingController
from repro.core.registry import available_algorithms, make_algorithm
from repro.algorithms import CountHop, KClique, KCycle, KSubsets, Orchestra


class TestAlgorithmProperties:
    def test_tags(self):
        props = AlgorithmProperties("X", 2, oblivious=True, direct=True, plain_packet=True)
        assert props.tag() == "Obl-PP-Dir"
        props = AlgorithmProperties("X", 2, oblivious=False, direct=False, plain_packet=False)
        assert props.tag() == "NObl-Gen-Ind"

    def test_paper_table1_tags(self):
        assert Orchestra(5).properties().tag() == "NObl-Gen-Dir"
        assert CountHop(5).properties().tag() == "NObl-Gen-Dir"
        assert KCycle(7, 3).properties().tag() == "Obl-PP-Ind"
        assert KClique(6, 2).properties().tag() == "Obl-PP-Dir"
        assert KSubsets(5, 2).properties().tag() == "Obl-Gen-Dir"

    def test_paper_energy_caps(self):
        assert Orchestra(5).energy_cap == 3
        assert CountHop(5).energy_cap == 2
        assert KCycle(9, 3).energy_cap <= 3
        assert KSubsets(5, 2).energy_cap == 2


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = available_algorithms()
        for expected in (
            "orchestra",
            "count-hop",
            "adjust-window",
            "k-cycle",
            "k-clique",
            "k-subsets",
            "rrw",
            "of-rrw",
            "mbtf",
        ):
            assert expected in names

    def test_make_algorithm_constructs_instances(self):
        algo = make_algorithm("k-cycle", n=9, k=3)
        assert isinstance(algo, KCycle)
        assert algo.n == 9

    def test_make_algorithm_unknown_name(self):
        with pytest.raises(KeyError):
            make_algorithm("does-not-exist", n=5)

    def test_small_system_rejected(self):
        with pytest.raises(ValueError):
            CountHop(2)


class _EchoController(QueueingController):
    """Minimal concrete QueueingController used to exercise the base class."""

    def wakes(self, round_no):
        return True

    def act(self, round_no):
        packet = self.queue.peek_any()
        if packet is None:
            return None
        return self.transmit(packet)


def _feedback(message=None, outcome=ChannelOutcome.SILENCE, delivered=False):
    return Feedback(round_no=0, outcome=outcome, message=message, delivered=delivered)


class TestQueueingController:
    def test_injection_lands_in_queue(self, make_packet):
        c = _EchoController(0, 3)
        c.on_inject(0, make_packet(1))
        assert c.queued_packets() == 1

    def test_own_heard_transmission_removes_packet(self, make_packet):
        c = _EchoController(0, 3)
        p = make_packet(1)
        c.on_inject(0, p)
        message = c.act(0)
        assert message.packet is p
        c.on_feedback(0, _feedback(message, ChannelOutcome.HEARD, delivered=True))
        assert c.queued_packets() == 0

    def test_collision_keeps_packet(self, make_packet):
        c = _EchoController(0, 3)
        p = make_packet(1)
        c.on_inject(0, p)
        c.act(0)
        c.on_feedback(0, _feedback(outcome=ChannelOutcome.COLLISION))
        assert c.queued_packets() == 1

    def test_foreign_message_does_not_touch_queue(self, make_packet):
        c = _EchoController(0, 3)
        c.on_inject(0, make_packet(1))
        foreign = Message(sender=2, packet=make_packet(0))
        c.on_feedback(0, _feedback(foreign, ChannelOutcome.HEARD))
        assert c.queued_packets() == 1

    def test_adopt_rejects_own_packets(self, make_packet):
        c = _EchoController(1, 3)
        with pytest.raises(ValueError):
            c.adopt(make_packet(1))

    def test_adopt_as_old(self, make_packet):
        c = _EchoController(0, 3)
        c.adopt(make_packet(2), as_old=True)
        assert c.queue.old_count == 1

    def test_station_id_validated(self):
        with pytest.raises(ValueError):
            _EchoController(5, 3)
