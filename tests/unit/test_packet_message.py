"""Unit tests for packets, messages and control-bit accounting."""

import pytest

from repro.channel.message import Message, control_bit_cost
from repro.channel.packet import Packet, PacketFactory


class TestPacket:
    def test_fields_are_stored(self):
        p = Packet(destination=3, injected_at=10, origin=1, packet_id=7)
        assert p.destination == 3
        assert p.injected_at == 10
        assert p.origin == 1
        assert p.packet_id == 7

    def test_delay_if_delivered(self):
        p = Packet(destination=1, injected_at=5, origin=0, packet_id=0)
        assert p.delay_if_delivered(12) == 7
        assert p.delay_if_delivered(5) == 0

    def test_packets_are_frozen(self):
        p = Packet(destination=1, injected_at=0, origin=0, packet_id=0)
        with pytest.raises(AttributeError):
            p.destination = 2  # type: ignore[misc]

    def test_module_level_ids_are_unique(self):
        a = Packet(destination=1, injected_at=0, origin=0)
        b = Packet(destination=1, injected_at=0, origin=0)
        assert a.packet_id != b.packet_id


class TestPacketFactory:
    def test_ids_are_sequential_from_start(self):
        factory = PacketFactory(start=100)
        p1 = factory.make(1, 0, 0)
        p2 = factory.make(2, 0, 0)
        assert (p1.packet_id, p2.packet_id) == (100, 101)

    def test_created_counter(self):
        factory = PacketFactory()
        for _ in range(5):
            factory.make(1, 0, 0)
        assert factory.created == 5

    def test_two_factories_are_independent(self):
        f1, f2 = PacketFactory(), PacketFactory()
        assert f1.make(1, 0, 0).packet_id == f2.make(1, 0, 0).packet_id


class TestControlBitCost:
    def test_none_costs_nothing(self):
        assert control_bit_cost(None) == 0

    def test_bool_costs_one_bit(self):
        assert control_bit_cost(True) == 1
        assert control_bit_cost(False) == 1

    def test_small_int_costs_few_bits(self):
        assert control_bit_cost(0) == 1
        assert control_bit_cost(1) >= 1
        assert control_bit_cost(7) <= 4

    def test_cost_grows_with_magnitude(self):
        assert control_bit_cost(10**6) > control_bit_cost(10)

    def test_tuple_costs_sum(self):
        assert control_bit_cost((3, 4)) == control_bit_cost(3) + control_bit_cost(4)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            control_bit_cost("text")


class TestMessage:
    def test_light_message(self):
        m = Message(sender=0, packet=None, control={"count": 3})
        assert m.is_light
        assert not m.is_plain_packet
        assert m.control_bits() > 0

    def test_plain_packet_message(self):
        p = Packet(destination=1, injected_at=0, origin=0, packet_id=0)
        m = Message(sender=0, packet=p)
        assert m.is_plain_packet
        assert not m.is_light
        assert m.control_bits() == 0

    def test_packet_with_control_is_not_plain(self):
        p = Packet(destination=1, injected_at=0, origin=0, packet_id=0)
        m = Message(sender=0, packet=p, control={"big": True})
        assert not m.is_plain_packet
        assert not m.is_light

    def test_control_bits_sums_fields(self):
        m = Message(sender=0, control={"a": True, "b": 15})
        assert m.control_bits() == control_bit_cost(True) + control_bit_cost(15)
