"""Window edge cases of the empirical stability assessment.

Complements tests/unit/test_metrics.py (which covers the headline
stable/unstable classification): these tests pin the behaviour of the
windowing itself — the ``min_rounds`` gate, the middle-quarter head
window, the tail fit, and the :class:`StabilityVerdict` fields derived
from them.
"""

import numpy as np
import pytest

from repro.metrics.stability import StabilityVerdict, assess_stability


class TestMinRoundsGate:
    def test_series_just_below_gate_is_always_stable(self):
        # Steeply growing, but 31 < min_rounds: not enough evidence.
        series = np.arange(31) * 100
        verdict = assess_stability(series, min_rounds=32)
        assert verdict.stable
        assert verdict.growth_rate == 0.0
        # Below the gate head and tail collapse to the overall mean.
        assert verdict.head_mean == verdict.tail_mean == pytest.approx(series.mean())

    def test_series_at_gate_is_assessed(self):
        series = np.arange(32) * 100
        verdict = assess_stability(series, min_rounds=32)
        assert not verdict.stable
        assert verdict.growth_rate > 0

    def test_custom_gate(self):
        series = np.arange(16) * 100
        assert assess_stability(series, min_rounds=20).stable
        assert not assess_stability(series, min_rounds=8).stable

    def test_peak_reported_even_below_gate(self):
        verdict = assess_stability(np.array([0, 5, 3]), min_rounds=32)
        assert verdict.peak == 5

    def test_empty_series(self):
        verdict = assess_stability(np.array([]))
        assert verdict == StabilityVerdict(True, 0.0, 0.0, 0.0, 0)


class TestWindows:
    def test_head_is_middle_quarter_tail_is_second_half(self):
        # 100 rounds: head = rounds [25, 50), tail = rounds [50, 100).
        series = np.zeros(100)
        series[25:50] = 10.0  # head window
        series[50:] = 30.0  # tail window
        verdict = assess_stability(series)
        assert verdict.head_mean == pytest.approx(10.0)
        assert verdict.tail_mean == pytest.approx(30.0)

    def test_warmup_spike_outside_head_window_is_ignored(self):
        # A huge transient in the first quarter must not inflate head_mean.
        series = np.full(200, 50.0)
        series[:40] = 5000.0
        verdict = assess_stability(series)
        assert verdict.head_mean == pytest.approx(50.0)
        assert verdict.stable

    def test_flat_tail_after_growth_is_stable(self):
        # Queues grow during the first half, then plateau: the tail fit
        # sees no growth, so the run counts as stable.
        series = np.concatenate([np.linspace(0, 400, 100), np.full(100, 400.0)])
        verdict = assess_stability(series)
        assert verdict.stable
        assert verdict.growth_rate == pytest.approx(0.0, abs=1e-6)

    def test_growth_only_flagged_with_drift(self):
        # A tail that oscillates upward slightly but sits at the same level
        # as the head is not drifting, hence stable.
        rng = np.random.default_rng(0)
        series = 100 + rng.integers(-2, 3, size=400)
        verdict = assess_stability(series)
        assert verdict.stable


class TestVerdictProperties:
    def test_drifting_flag_ratio(self):
        verdict = StabilityVerdict(
            stable=False, growth_rate=1.0, tail_mean=20.0, head_mean=10.0, peak=25
        )
        assert verdict.drifting  # 20/10 > 1.5
        verdict = StabilityVerdict(
            stable=True, growth_rate=0.0, tail_mean=12.0, head_mean=10.0, peak=14
        )
        assert not verdict.drifting

    def test_drifting_with_zero_head(self):
        verdict = StabilityVerdict(
            stable=False, growth_rate=0.5, tail_mean=5.0, head_mean=0.0, peak=9
        )
        assert verdict.drifting
        verdict = StabilityVerdict(
            stable=True, growth_rate=0.0, tail_mean=0.0, head_mean=0.0, peak=0
        )
        assert not verdict.drifting
