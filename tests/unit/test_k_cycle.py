"""Unit tests for the k-Cycle algorithm (Section 5)."""

import pytest

from repro.adversary import NoInjectionAdversary, SingleSourceSprayAdversary, SingleTargetAdversary
from repro.algorithms.k_cycle import (
    KCycle,
    activity_segment_length,
    cycle_groups,
    effective_group_size,
)
from repro.analysis import bounds
from repro.sim import run_simulation


class TestGroupConstruction:
    def test_groups_have_k_consecutive_stations(self):
        groups = cycle_groups(9, 3)
        assert all(len(g) == 3 for g in groups)
        # Consecutive groups share exactly one station.
        for a, b in zip(groups, groups[1:]):
            assert len(set(a) & set(b)) >= 1

    def test_groups_cover_all_stations(self):
        for n, k in [(9, 3), (10, 4), (7, 3), (12, 5)]:
            covered = set()
            for group in cycle_groups(n, k):
                covered.update(group)
            assert covered == set(range(n))

    def test_cycle_wraps_to_station_zero(self):
        groups = cycle_groups(9, 3)
        assert 0 in groups[0]
        assert set(groups[-1]) & set(groups[0])

    def test_effective_group_size_shrinks_large_k(self):
        assert effective_group_size(7, 6) == 4  # 2k <= n + 1
        assert effective_group_size(9, 3) == 3

    def test_segment_length_matches_formula(self):
        assert activity_segment_length(9, 3) == pytest.approx(
            -(-4 * 8 * 3 // (9 - 3))
        )

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KCycle(5, 1)
        with pytest.raises(ValueError):
            KCycle(5, 5)


class TestSchedule:
    def test_schedule_respects_energy_cap(self):
        algo = KCycle(9, 3)
        schedule = algo.oblivious_schedule()
        assert schedule.max_awake(schedule.period_length) <= algo.energy_cap

    def test_exactly_one_group_awake_per_round(self):
        algo = KCycle(10, 4)
        schedule = algo.oblivious_schedule()
        groups = {frozenset(g) for g in algo.groups}
        for t in range(schedule.period_length):
            assert schedule.awake_set(t) in groups

    def test_every_station_gets_on_time(self):
        algo = KCycle(9, 3)
        schedule = algo.oblivious_schedule()
        horizon = schedule.period_length
        for station in range(9):
            assert schedule.on_fraction(station, horizon) > 0

    def test_controllers_follow_published_schedule(self):
        algo = KCycle(9, 3)
        schedule = algo.oblivious_schedule()
        controllers = algo.build_controllers()
        for t in range(2 * schedule.period_length):
            awake = {c.station_id for c in controllers if c.wakes(t)}
            assert awake == set(schedule.awake_set(t))

    def test_thresholds_exposed(self):
        algo = KCycle(9, 3)
        assert algo.stability_threshold() == pytest.approx(
            bounds.k_cycle_rate_threshold(9, 3)
        )
        assert algo.latency_bound(2.0) == pytest.approx((32 + 2) * 9)


class TestRouting:
    def test_no_traffic_means_no_transmissions(self):
        result = run_simulation(KCycle(9, 3), NoInjectionAdversary(), 500, record_trace=True)
        assert result.summary.injected == 0
        assert all(e.outcome.name == "SILENCE" for e in result.trace)

    def test_delivers_cross_group_traffic(self):
        # Source 0 and destination 5 live in different groups for n=9, k=3.
        result = run_simulation(
            KCycle(9, 3), SingleTargetAdversary(0.05, 1.0, source=0, destination=5), 4000
        )
        assert result.summary.delivered > 0
        assert result.summary.delivery_ratio > 0.8

    def test_stable_below_threshold(self):
        rho = 0.5 * bounds.k_cycle_rate_threshold(9, 3)
        result = run_simulation(KCycle(9, 3), SingleSourceSprayAdversary(rho, 2.0), 6000)
        assert result.stable
        assert result.summary.delivery_ratio > 0.9

    def test_energy_cap_never_violated(self):
        # run_simulation enforces the cap; reaching the end is the assertion.
        result = run_simulation(
            KCycle(10, 4), SingleSourceSprayAdversary(0.2, 2.0), 3000
        )
        assert result.summary.max_energy <= KCycle(10, 4).energy_cap
