"""Unit tests for the capability-negotiated kernel engine."""

import pytest

from repro.adversary import (
    AdaptiveStarvationAdversary,
    NoInjectionAdversary,
    ObservationProfile,
    SingleTargetAdversary,
)
from repro.algorithms import CountHop, KCycle, KSubsets, Orchestra
from repro.channel.energy import EnergyCapViolation
from repro.channel.engine import DEFAULT_VIEW_WINDOW, EngineConfig, RoundEngine
from repro.channel.feedback import ChannelOutcome, Feedback, FeedbackPool
from repro.channel.kernel import KernelEngine
from repro.channel.message import Message
from repro.channel.packet import PacketFactory
from repro.metrics.collector import MetricsCollector
from repro.sim import run_simulation


def build_kernel(algorithm, adversary, **config_kwargs):
    controllers = algorithm.build_controllers()
    adversary.bind(algorithm.n, PacketFactory())
    config = EngineConfig(energy_cap=algorithm.energy_cap, **config_kwargs)
    return KernelEngine(
        controllers,
        adversary,
        MetricsCollector(),
        config,
        schedule=algorithm.oblivious_schedule(),
    )


class TestNegotiation:
    def test_schedule_fast_path_for_pure_wake_controllers(self):
        engine = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.2, 1.0))
        assert engine.uses_schedule_fast_path
        assert engine.uses_incremental_metrics

    def test_no_schedule_fast_path_when_wakes_has_side_effects(self):
        # k-Subsets publishes a schedule but its wake protocol advances a
        # phase state machine, so its controllers do not declare
        # static_wake_schedule; the shared phase clock puts them on the
        # ticked tier instead of the per-station fallback.
        engine = build_kernel(KSubsets(6, 3), SingleTargetAdversary(0.2, 1.0))
        assert not engine.uses_schedule_fast_path
        assert engine.uses_ticked_wakes

    def test_planned_injections_for_oblivious_adversaries(self):
        engine = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.2, 1.0))
        assert engine.uses_planned_injections
        engine.run(50)
        assert engine.collector.injected_count > 0

    def test_planned_injections_skipped_for_windowed_adversaries(self):
        engine = build_kernel(KCycle(9, 3), AdaptiveStarvationAdversary(0.5, 1.0))
        assert not engine.uses_planned_injections

    def test_planned_injections_skipped_under_full_history_override(self):
        # full_history forces an unbounded view; the conservative kernel
        # keeps such runs on the checked per-round inject() path.
        engine = build_kernel(
            KCycle(9, 3), SingleTargetAdversary(0.2, 1.0), full_history=True
        )
        assert not engine.uses_planned_injections

    def test_batched_view_for_windowed_adversary_on_schedule_path(self):
        engine = build_kernel(KCycle(9, 3), AdaptiveStarvationAdversary(0.5, 1.0))
        assert engine.uses_batched_view
        assert engine.maintains_view

    def test_batched_view_needs_the_static_schedule_tier(self):
        # The ticked tier has no precomputed awake-count series to back
        # the view, so windowed adversaries stay on incremental updates.
        engine = build_kernel(CountHop(5), AdaptiveStarvationAdversary(0.5, 1.0))
        assert not engine.uses_batched_view
        assert engine.maintains_view

    def test_batched_view_skipped_for_full_history(self):
        engine = build_kernel(
            KCycle(9, 3), AdaptiveStarvationAdversary(0.5, 1.0), full_history=True
        )
        assert not engine.uses_batched_view

    def test_aborted_run_replays_the_cached_plan_remainder(self):
        # A plan consumes the leaky-bucket budget for its whole chunk up
        # front.  When an EnergyCapViolation aborts the run mid-chunk,
        # resuming must replay the cached remainder — re-planning would
        # start from the post-chunk budget state and inject the wrong
        # packets for the rounds already materialised.
        from repro.adversary import SingleSourceSprayAdversary

        algorithm = CountHop(5)
        adversary = SingleSourceSprayAdversary(0.9, 2.0)
        adversary.bind(algorithm.n, PacketFactory())
        engine = KernelEngine(
            algorithm.build_controllers(),
            adversary,
            MetricsCollector(),
            EngineConfig(energy_cap=1, enforce_energy_cap=True),
            schedule=algorithm.oblivious_schedule(),
        )
        assert engine.uses_planned_injections
        with pytest.raises(EnergyCapViolation):
            engine.run(400)
        consumed = adversary.constraint.total_injected
        injected = engine.collector.injected_count
        assert consumed > injected  # chunk materialised past the abort
        with pytest.raises(EnergyCapViolation):
            engine.run(400)
        # The retry re-injects only the failing round's planned packets —
        # no second chunk is planned, so the adversary state is untouched.
        assert adversary.constraint.total_injected == consumed
        assert engine.collector.injected_count > injected

    def test_no_schedule_fast_path_without_published_schedule(self):
        engine = build_kernel(Orchestra(6), SingleTargetAdversary(0.2, 1.0))
        assert not engine.uses_schedule_fast_path

    def test_oblivious_adversary_skips_view_maintenance(self):
        engine = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.2, 1.0))
        assert not engine.maintains_view
        engine.run(50)
        assert len(engine.view.awake_history) == 0

    def test_windowed_adversary_gets_bounded_view_with_exact_counts(self):
        adversary = AdaptiveStarvationAdversary(0.5, 1.0)
        assert adversary.observation_profile() == ObservationProfile.windowed(1)
        engine = build_kernel(KCycle(9, 3), adversary, enforce_energy_cap=False)
        assert engine.maintains_view
        engine.run(50)
        assert len(engine.view.awake_history) == 1  # bounded window
        # ... but the on-round counts cover all 50 rounds.
        total_on = sum(engine.view.station_on_rounds(i) for i in range(9))
        assert total_on == sum(engine.energy.per_round)

    def test_full_history_opt_in_overrides_profile(self):
        engine = build_kernel(
            KCycle(9, 3), SingleTargetAdversary(0.2, 1.0), full_history=True
        )
        assert engine.maintains_view
        engine.run(40)
        assert len(engine.view.awake_history) == 40

    def test_record_trace_rejected(self):
        with pytest.raises(ValueError, match="does not record traces"):
            build_kernel(KCycle(9, 3), NoInjectionAdversary(), record_trace=True)

    def test_ticked_tier_for_state_machine_algorithms(self):
        engine = build_kernel(CountHop(6), SingleTargetAdversary(0.2, 1.0))
        assert engine.uses_ticked_wakes
        assert not engine.uses_schedule_fast_path

    def test_ticked_tier_requires_one_shared_oracle(self):
        algorithm = CountHop(6)
        controllers = algorithm.build_controllers()
        # A foreign controller set mixed in (different oracle) must demote
        # the run to the per-station fallback.
        controllers[0].wake_oracle = CountHop(6).build_controllers()[0].wake_oracle
        adversary = SingleTargetAdversary(0.2, 1.0).bind(6, PacketFactory())
        engine = KernelEngine(
            controllers, adversary, MetricsCollector(), EngineConfig(energy_cap=2)
        )
        assert not engine.uses_ticked_wakes

    def test_vectorised_energy_only_when_cap_safe(self):
        # k-Cycle's period never wakes more than k stations: with the cap
        # at k the awake-count series is precomputed...
        engine = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.2, 1.0))
        assert engine.uses_vectorised_energy
        # ... but a tighter cap can be violated, so the kernel keeps the
        # per-round checks (and raises exactly like the reference loop).
        algorithm = KCycle(9, 3)
        adversary = NoInjectionAdversary().bind(9, PacketFactory())
        tight = KernelEngine(
            algorithm.build_controllers(),
            adversary,
            MetricsCollector(),
            EngineConfig(energy_cap=2, enforce_energy_cap=False),
            schedule=algorithm.oblivious_schedule(),
        )
        assert not tight.uses_vectorised_energy

    def test_vectorised_energy_series_matches_reference(self):
        algorithm = KCycle(9, 3)
        kernel = build_kernel(algorithm, SingleTargetAdversary(0.4, 2.0))
        assert kernel.uses_vectorised_energy
        kernel.run(137)
        adversary = SingleTargetAdversary(0.4, 2.0).bind(9, PacketFactory())
        reference = RoundEngine(
            KCycle(9, 3).build_controllers(),
            adversary,
            MetricsCollector(),
            EngineConfig(energy_cap=algorithm.energy_cap),
        )
        reference.run(137)
        assert kernel.collector.energy_series == reference.collector.energy_series
        assert kernel.energy.per_round == reference.energy.per_round
        assert kernel.energy.total_station_rounds == reference.energy.total_station_rounds
        assert kernel.energy.max_awake == reference.energy.max_awake


class TestFeedbackPool:
    def _message(self, sender=0):
        return Message(sender=sender, packet=None, control={})

    def test_silence_and_collision_are_interned_singletons(self):
        pool = FeedbackPool()
        assert pool.silence() is pool.silence()
        assert pool.collision() is pool.collision()
        assert pool.silence().outcome is ChannelOutcome.SILENCE
        assert pool.collision().outcome is ChannelOutcome.COLLISION
        assert pool.silence().round_no == Feedback.INTERNED_ROUND

    def test_heard_recycles_when_pool_holds_sole_reference(self):
        pool = FeedbackPool()
        first = pool.heard(3, self._message(), delivered=False)
        first_id = id(first)
        del first  # the pool now holds the only reference
        second = pool.heard(4, self._message(1), delivered=True)
        assert id(second) == first_id
        assert second.round_no == 4
        assert second.message.sender == 1
        assert second.delivered

    def test_heard_never_mutates_a_retained_instance(self):
        pool = FeedbackPool()
        retained = pool.heard(3, self._message(), delivered=False)
        fresh = pool.heard(4, self._message(1), delivered=True)
        assert fresh is not retained
        assert retained.round_no == 3
        assert retained.message.sender == 0
        assert not retained.delivered


class TestPolledFallback:
    def test_opt_out_controller_forces_full_polls(self):
        algorithm = KCycle(9, 3)
        controllers = algorithm.build_controllers()
        controllers[0].queue_metrics_incremental = False
        adversary = SingleTargetAdversary(0.2, 1.0).bind(9, PacketFactory())
        engine = KernelEngine(
            controllers,
            adversary,
            MetricsCollector(),
            EngineConfig(energy_cap=3),
            schedule=algorithm.oblivious_schedule(),
        )
        assert not engine.uses_incremental_metrics
        engine.run(100)
        assert engine.collector.rounds_observed == 100

    def test_polled_and_incremental_collect_identically(self):
        def collect(opt_out: bool):
            algorithm = KCycle(9, 3)
            controllers = algorithm.build_controllers()
            if opt_out:
                controllers[0].queue_metrics_incremental = False
            adversary = SingleTargetAdversary(0.6, 2.0).bind(9, PacketFactory())
            engine = KernelEngine(
                controllers,
                adversary,
                MetricsCollector(),
                EngineConfig(energy_cap=3),
                schedule=algorithm.oblivious_schedule(),
            )
            engine.run(400)
            return engine.collector

        polled, incremental = collect(True), collect(False)
        assert polled.total_queue_series == incremental.total_queue_series
        assert polled.per_station_max_queue == incremental.per_station_max_queue
        assert polled.outcome_counts == incremental.outcome_counts


class TestSemantics:
    def test_energy_cap_enforced(self):
        algorithm = KCycle(9, 3)
        controllers = algorithm.build_controllers()
        adversary = NoInjectionAdversary().bind(9, PacketFactory())
        engine = KernelEngine(
            controllers,
            adversary,
            MetricsCollector(),
            EngineConfig(energy_cap=2, enforce_energy_cap=True),
            schedule=algorithm.oblivious_schedule(),
        )
        with pytest.raises(EnergyCapViolation):
            engine.run(10)
        # The violating round was observed before the raise, like the
        # reference engine's EnergyMonitor.observe.
        assert engine.energy.violations == 1
        assert engine.energy.total_station_rounds == sum(engine.energy.per_round)

    def test_resumed_runs_accumulate(self):
        engine = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.4, 2.0))
        engine.run(100)
        engine.run(100)
        assert engine.round_no == 200
        assert engine.collector.rounds_observed == 200

        other = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.4, 2.0))
        other.run(200)
        assert (
            engine.collector.total_queue_series == other.collector.total_queue_series
        )

    def test_reference_window_default_is_bounded(self):
        # Satellite fix: even the reference engine no longer grows its view
        # without bound for adversaries with a declared (finite) window.
        algorithm = KCycle(9, 3)
        adversary = SingleTargetAdversary(0.2, 1.0).bind(9, PacketFactory())
        engine = RoundEngine(algorithm.build_controllers(), adversary)
        assert engine.view.window == DEFAULT_VIEW_WINDOW

    def test_run_simulation_engine_selector_validated(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_simulation(
                KCycle(9, 3), SingleTargetAdversary(0.2, 1.0), 10, engine="warp"
            )
