"""Unit tests for the capability-negotiated kernel engine."""

import pytest

from repro.adversary import (
    AdaptiveStarvationAdversary,
    NoInjectionAdversary,
    ObservationProfile,
    SingleTargetAdversary,
)
from repro.algorithms import KCycle, KSubsets, Orchestra
from repro.channel.energy import EnergyCapViolation
from repro.channel.engine import DEFAULT_VIEW_WINDOW, EngineConfig, RoundEngine
from repro.channel.kernel import KernelEngine
from repro.channel.packet import PacketFactory
from repro.metrics.collector import MetricsCollector
from repro.sim import run_simulation


def build_kernel(algorithm, adversary, **config_kwargs):
    controllers = algorithm.build_controllers()
    adversary.bind(algorithm.n, PacketFactory())
    config = EngineConfig(energy_cap=algorithm.energy_cap, **config_kwargs)
    return KernelEngine(
        controllers,
        adversary,
        MetricsCollector(),
        config,
        schedule=algorithm.oblivious_schedule(),
    )


class TestNegotiation:
    def test_schedule_fast_path_for_pure_wake_controllers(self):
        engine = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.2, 1.0))
        assert engine.uses_schedule_fast_path
        assert engine.uses_incremental_metrics

    def test_no_schedule_fast_path_when_wakes_has_side_effects(self):
        # k-Subsets publishes a schedule but its controllers advance a
        # phase state machine inside wakes(), so they do not declare
        # static_wake_schedule and the kernel must keep calling wakes().
        engine = build_kernel(KSubsets(6, 3), SingleTargetAdversary(0.2, 1.0))
        assert not engine.uses_schedule_fast_path

    def test_no_schedule_fast_path_without_published_schedule(self):
        engine = build_kernel(Orchestra(6), SingleTargetAdversary(0.2, 1.0))
        assert not engine.uses_schedule_fast_path

    def test_oblivious_adversary_skips_view_maintenance(self):
        engine = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.2, 1.0))
        assert not engine.maintains_view
        engine.run(50)
        assert len(engine.view.awake_history) == 0

    def test_windowed_adversary_gets_bounded_view_with_exact_counts(self):
        adversary = AdaptiveStarvationAdversary(0.5, 1.0)
        assert adversary.observation_profile() == ObservationProfile.windowed(1)
        engine = build_kernel(KCycle(9, 3), adversary, enforce_energy_cap=False)
        assert engine.maintains_view
        engine.run(50)
        assert len(engine.view.awake_history) == 1  # bounded window
        # ... but the on-round counts cover all 50 rounds.
        total_on = sum(engine.view.station_on_rounds(i) for i in range(9))
        assert total_on == sum(engine.energy.per_round)

    def test_full_history_opt_in_overrides_profile(self):
        engine = build_kernel(
            KCycle(9, 3), SingleTargetAdversary(0.2, 1.0), full_history=True
        )
        assert engine.maintains_view
        engine.run(40)
        assert len(engine.view.awake_history) == 40

    def test_record_trace_rejected(self):
        with pytest.raises(ValueError, match="does not record traces"):
            build_kernel(KCycle(9, 3), NoInjectionAdversary(), record_trace=True)


class TestPolledFallback:
    def test_opt_out_controller_forces_full_polls(self):
        algorithm = KCycle(9, 3)
        controllers = algorithm.build_controllers()
        controllers[0].queue_metrics_incremental = False
        adversary = SingleTargetAdversary(0.2, 1.0).bind(9, PacketFactory())
        engine = KernelEngine(
            controllers,
            adversary,
            MetricsCollector(),
            EngineConfig(energy_cap=3),
            schedule=algorithm.oblivious_schedule(),
        )
        assert not engine.uses_incremental_metrics
        engine.run(100)
        assert engine.collector.rounds_observed == 100

    def test_polled_and_incremental_collect_identically(self):
        def collect(opt_out: bool):
            algorithm = KCycle(9, 3)
            controllers = algorithm.build_controllers()
            if opt_out:
                controllers[0].queue_metrics_incremental = False
            adversary = SingleTargetAdversary(0.6, 2.0).bind(9, PacketFactory())
            engine = KernelEngine(
                controllers,
                adversary,
                MetricsCollector(),
                EngineConfig(energy_cap=3),
                schedule=algorithm.oblivious_schedule(),
            )
            engine.run(400)
            return engine.collector

        polled, incremental = collect(True), collect(False)
        assert polled.total_queue_series == incremental.total_queue_series
        assert polled.per_station_max_queue == incremental.per_station_max_queue
        assert polled.outcome_counts == incremental.outcome_counts


class TestSemantics:
    def test_energy_cap_enforced(self):
        algorithm = KCycle(9, 3)
        controllers = algorithm.build_controllers()
        adversary = NoInjectionAdversary().bind(9, PacketFactory())
        engine = KernelEngine(
            controllers,
            adversary,
            MetricsCollector(),
            EngineConfig(energy_cap=2, enforce_energy_cap=True),
            schedule=algorithm.oblivious_schedule(),
        )
        with pytest.raises(EnergyCapViolation):
            engine.run(10)
        # The violating round was observed before the raise, like the
        # reference engine's EnergyMonitor.observe.
        assert engine.energy.violations == 1
        assert engine.energy.total_station_rounds == sum(engine.energy.per_round)

    def test_resumed_runs_accumulate(self):
        engine = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.4, 2.0))
        engine.run(100)
        engine.run(100)
        assert engine.round_no == 200
        assert engine.collector.rounds_observed == 200

        other = build_kernel(KCycle(9, 3), SingleTargetAdversary(0.4, 2.0))
        other.run(200)
        assert (
            engine.collector.total_queue_series == other.collector.total_queue_series
        )

    def test_reference_window_default_is_bounded(self):
        # Satellite fix: even the reference engine no longer grows its view
        # without bound for adversaries with a declared (finite) window.
        algorithm = KCycle(9, 3)
        adversary = SingleTargetAdversary(0.2, 1.0).bind(9, PacketFactory())
        engine = RoundEngine(algorithm.build_controllers(), adversary)
        assert engine.view.window == DEFAULT_VIEW_WINDOW

    def test_run_simulation_engine_selector_validated(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_simulation(
                KCycle(9, 3), SingleTargetAdversary(0.2, 1.0), 10, engine="warp"
            )
