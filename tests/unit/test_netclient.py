"""Unit tests for the resilient RPC client (:mod:`repro.sim.netclient`).

Covers the deterministic backoff schedule, the circuit-breaker state
machine, retry classification (idempotent vs non-idempotent, decisive
4xx vs retryable 5xx/checksum rejects), torn/corrupt response detection
against a real HTTP server, and the network fault coins on
:class:`~repro.sim.faults.FaultPlan`.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.sim.faults import NET_FAULT_KINDS, FaultPlan
from repro.sim.netclient import (
    PAYLOAD_CHECKSUM_HEADER,
    CircuitBreaker,
    CircuitOpenError,
    ResilientClient,
    RpcHttpError,
    RpcPolicy,
    RpcResponse,
    RpcStats,
    RpcUnavailableError,
    TornResponseError,
    payload_digest,
)


class TestRpcPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RpcPolicy(timeout=0)
        with pytest.raises(ValueError):
            RpcPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RpcPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RpcPolicy(breaker_threshold=0)
        with pytest.raises(ValueError):
            RpcPolicy(breaker_reset=0)

    def test_backoff_is_deterministic_and_replayable(self):
        policy = RpcPolicy(backoff_base=0.1, backoff_cap=2.0, jitter=0.25, seed=7)
        twin = RpcPolicy(backoff_base=0.1, backoff_cap=2.0, jitter=0.25, seed=7)
        for attempt in range(1, 6):
            assert policy.backoff_delay("k", attempt) == twin.backoff_delay(
                "k", attempt
            )

    def test_backoff_doubles_and_caps(self):
        policy = RpcPolicy(backoff_base=0.1, backoff_cap=0.35, jitter=0.0)
        assert policy.backoff_delay("k", 1) == pytest.approx(0.1)
        assert policy.backoff_delay("k", 2) == pytest.approx(0.2)
        assert policy.backoff_delay("k", 3) == pytest.approx(0.35)  # capped
        assert policy.backoff_delay("k", 9) == pytest.approx(0.35)

    def test_jitter_bounded_and_desynchronises_keys(self):
        policy = RpcPolicy(backoff_base=0.1, backoff_cap=2.0, jitter=0.25, seed=1)
        base = 0.1
        delays = {policy.backoff_delay(f"key{i}", 1) for i in range(16)}
        assert len(delays) > 1  # different keys spread out
        for delay in delays:
            assert base <= delay <= base * 1.25

    def test_attempt_zero_and_zero_base_sleep_nothing(self):
        assert RpcPolicy().backoff_delay("k", 0) == 0.0
        assert RpcPolicy(backoff_base=0.0).backoff_delay("k", 3) == 0.0


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=3, reset=1.0, clock=lambda: clock[0])
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats.circuit_opens == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe_then_closes_on_success(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, reset=1.0, clock=lambda: clock[0])
        closed = []
        breaker.on_close.append(lambda: closed.append(True))
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 1.5  # reset window elapsed
        assert breaker.allow()  # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe in flight
        breaker.record_success()
        assert breaker.state == "closed"
        assert closed == [True]  # reconciliation hook fired
        assert breaker.stats.circuit_closes == 1

    def test_failed_probe_reopens_for_another_window(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, reset=1.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # new reset window from the probe failure
        clock[0] = 2.9
        assert breaker.allow()


def _refusing_client(**plan_kwargs):
    """A client whose every attempt is refused by injection (no sockets)."""
    plan = FaultPlan(seed=1, net_refuse_rate=1.0, fault_budget=10_000, **plan_kwargs)
    sleeps = []
    client = ResilientClient(
        RpcPolicy(max_attempts=3, backoff_base=0.05, jitter=0.0, breaker_threshold=100),
        fault_plan=plan,
        sleep=sleeps.append,
    )
    return client, sleeps


class TestResilientClientRetries:
    def test_exhausted_retries_raise_unavailable_with_cause(self):
        client, sleeps = _refusing_client()
        with pytest.raises(RpcUnavailableError) as info:
            client.request("GET", "http://127.0.0.1:1/x", key="k")
        assert isinstance(info.value.__cause__, ConnectionRefusedError)
        assert client.stats.requests == 1
        assert client.stats.retries == 2  # attempts 2 and 3
        assert client.stats.giveups == 1
        assert sleeps == [
            pytest.approx(0.05),
            pytest.approx(0.1),
        ]  # deterministic, no jitter

    def test_breaker_opens_and_fails_fast(self):
        plan = FaultPlan(seed=1, net_refuse_rate=1.0, fault_budget=10_000)
        clock = [0.0]
        client = ResilientClient(
            RpcPolicy(
                max_attempts=1, backoff_base=0.0, breaker_threshold=2, breaker_reset=9.0
            ),
            fault_plan=plan,
            sleep=lambda _: None,
            clock=lambda: clock[0],
        )
        for _ in range(2):
            with pytest.raises(RpcUnavailableError):
                client.request("GET", "http://127.0.0.1:1/x", key="k")
        assert client.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.request("GET", "http://127.0.0.1:1/x", key="k")
        assert client.stats.fast_failures == 1
        assert client.stats.circuit_opens == 1

    def test_non_idempotent_requests_retry_only_refusals(self, monkeypatch):
        client = ResilientClient(
            RpcPolicy(max_attempts=3, backoff_base=0.0, breaker_threshold=100),
            sleep=lambda _: None,
        )
        calls = []

        def attempt(method, url, data, headers, injected, timeout):
            calls.append(1)
            raise TimeoutError("stalled")

        monkeypatch.setattr(client, "_attempt", attempt)
        with pytest.raises(RpcUnavailableError):
            client.request(
                "POST", "http://x/jobs", key="submit", idempotent=False
            )
        assert len(calls) == 1  # a timeout may have been applied: no retry

        calls.clear()

        def refused(method, url, data, headers, injected, timeout):
            calls.append(1)
            raise ConnectionRefusedError("not listening")

        monkeypatch.setattr(client, "_attempt", refused)
        with pytest.raises(RpcUnavailableError):
            client.request(
                "POST", "http://x/jobs", key="submit", idempotent=False
            )
        assert len(calls) == 3  # provably never arrived: safe to retry

    def test_decisive_4xx_raises_immediately_and_heals_breaker(self, monkeypatch):
        client = ResilientClient(
            RpcPolicy(max_attempts=4, backoff_base=0.0, breaker_threshold=1),
            sleep=lambda _: None,
        )
        client.breaker.record_failure()  # open
        client.breaker.state = "closed"  # force through for the test
        calls = []

        def attempt(method, url, data, headers, injected, timeout):
            calls.append(1)
            return RpcResponse(status=404, headers={}, body=b"nope")

        monkeypatch.setattr(client, "_attempt", attempt)
        with pytest.raises(RpcHttpError) as info:
            client.request("GET", "http://x/thing", key="k")
        assert info.value.status == 404
        assert len(calls) == 1  # the server answered: retrying cannot help
        assert client.breaker.state == "closed"

    def test_checksum_reject_is_retried(self, monkeypatch):
        client = ResilientClient(
            RpcPolicy(max_attempts=3, backoff_base=0.0, breaker_threshold=100),
            sleep=lambda _: None,
        )
        calls = []

        def attempt(method, url, data, headers, injected, timeout):
            calls.append(1)
            if len(calls) < 3:
                raise RpcHttpError(400, "request body checksum mismatch")
            return RpcResponse(status=201, headers={}, body=b"{}")

        monkeypatch.setattr(client, "_attempt", attempt)
        resp = client.request("PUT", "http://x/cache/k", data=b"payload", key="k")
        assert resp.status == 201
        assert len(calls) == 3

    def test_ok_statuses_pass_through_unraised(self, monkeypatch):
        client = ResilientClient(sleep=lambda _: None)
        monkeypatch.setattr(
            client,
            "_attempt",
            lambda *a: RpcResponse(status=404, headers={}, body=b""),
        )
        resp = client.request("GET", "http://x/miss", key="k", ok=(200, 404))
        assert resp.status == 404


class _EchoHandler(BaseHTTPRequestHandler):
    """Serves a fixed checksummed JSON body; remembers request checksums."""

    body = json.dumps({"value": 42}).encode("utf-8")

    def log_message(self, fmt, *args):
        pass

    def do_GET(self):
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(self.body)))
        self.send_header(PAYLOAD_CHECKSUM_HEADER, payload_digest(self.body))
        self.end_headers()
        self.wfile.write(self.body)


@pytest.fixture()
def echo_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _EchoHandler)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


class TestWireVerification:
    def test_clean_exchange_verifies_checksum(self, echo_server):
        client = ResilientClient(sleep=lambda _: None)
        assert client.get_json(f"{echo_server}/x", key="k") == {"value": 42}

    def test_injected_torn_body_is_detected_and_retried(self, echo_server):
        plan = FaultPlan(seed=3, net_torn_rate=1.0, fault_budget=1)
        client = ResilientClient(
            RpcPolicy(max_attempts=2, backoff_base=0.0, breaker_threshold=100),
            fault_plan=plan,
            sleep=lambda _: None,
        )
        # Attempt 0 is torn mid-body (detected via Content-Length),
        # attempt 1 is past the fault budget and succeeds.
        assert client.get_json(f"{echo_server}/x", key="k") == {"value": 42}
        assert client.stats.retries == 1
        assert client.stats.failures == 1

    def test_injected_corrupt_body_fails_its_checksum(self, echo_server):
        plan = FaultPlan(seed=3, net_corrupt_rate=1.0, fault_budget=1)
        client = ResilientClient(
            RpcPolicy(max_attempts=2, backoff_base=0.0, breaker_threshold=100),
            fault_plan=plan,
            sleep=lambda _: None,
        )
        assert client.get_json(f"{echo_server}/x", key="k") == {"value": 42}
        assert client.stats.retries == 1

    def test_torn_with_no_retry_budget_surfaces(self, echo_server):
        plan = FaultPlan(seed=3, net_torn_rate=1.0, fault_budget=10)
        client = ResilientClient(
            RpcPolicy(max_attempts=2, backoff_base=0.0, breaker_threshold=100),
            fault_plan=plan,
            sleep=lambda _: None,
        )
        with pytest.raises(RpcUnavailableError) as info:
            client.get_json(f"{echo_server}/x", key="k")
        assert isinstance(info.value.__cause__, TornResponseError)


class TestNetFaultCoins:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(net_refuse_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(net_torn_rate=-0.1)

    def test_net_active_flags_only_network_rates(self):
        assert not FaultPlan(kill_rate=0.5).net_active
        assert FaultPlan(net_http_error_rate=0.1).net_active
        assert not FaultPlan(net_http_error_rate=0.1).active

    def test_coins_are_deterministic_and_budgeted(self):
        plan = FaultPlan(seed=11, net_refuse_rate=1.0, fault_budget=2)
        twin = FaultPlan(seed=11, net_refuse_rate=1.0, fault_budget=2)
        for attempt in range(4):
            assert plan.net_fault("k", attempt) == twin.net_fault("k", attempt)
        assert plan.net_fault("k", 0) == "refuse"
        assert plan.net_fault("k", 2) is None  # past the budget
        assert plan.net_fault("k", 99) is None

    def test_attempt_offset_does_not_shift_net_coins(self):
        base = FaultPlan(seed=11, net_refuse_rate=0.5, fault_budget=4)
        shifted = base.with_offset(2)
        for attempt in range(4):
            assert base.net_fault("k", attempt) == shifted.net_fault("k", attempt)

    def test_round_trips_network_rates(self):
        plan = FaultPlan(
            seed=9,
            net_refuse_rate=0.1,
            net_timeout_rate=0.2,
            net_torn_rate=0.3,
            net_http_error_rate=0.4,
            net_corrupt_rate=0.5,
            stall_seconds=0.25,
            fault_budget=3,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_every_declared_kind_is_drawable(self):
        for kind in NET_FAULT_KINDS:
            plan = FaultPlan(seed=5, fault_budget=1, **{f"net_{kind}_rate": 1.0})
            assert plan.net_fault("k", 0) == kind


class TestRpcStats:
    def test_as_dict_and_summary(self):
        stats = RpcStats(retries=3, circuit_opens=2, circuit_closes=1, giveups=4)
        d = stats.as_dict()
        assert d["retries"] == 3 and d["circuit_opens"] == 2
        text = stats.summary()
        assert "3 rpc retries" in text
        assert "2 circuit opens/1 closes" in text
        assert "4 rpc giveups" in text
        assert RpcStats().summary() == ""
