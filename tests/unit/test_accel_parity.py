"""Bit-parity of the _accel kernels' jit and numpy implementations.

Every kernel in :mod:`repro._accel` ships two implementations: a scalar
loop (``_<name>_jit`` — njit-compiled on the numba CI leg, plain Python
otherwise) and a vectorised numpy expression (``_<name>_np``).  The block
engine's lowered-segment results must not depend on which leg runs, so
this suite pins the two against each other over randomised segment
inputs — including empty rounds, empty segments, and mixed-sign deltas
(the injection-absorbing lowering contract produces positive *and*
negative per-station entries).
"""

import numpy as np
import pytest

from repro import _accel


def _random_delta_csr(rng, rounds, n):
    """A random queue-delta CSR: per-round entries, net per station."""
    stations = []
    values = []
    offsets = [0]
    for _ in range(rounds):
        touched = rng.choice(
            n, size=rng.integers(0, min(n, 4) + 1), replace=False
        )
        for s in touched:
            stations.append(int(s))
            values.append(int(rng.integers(-3, 4)))
        offsets.append(len(stations))
    return (
        np.asarray(offsets, dtype=np.int64),
        np.asarray(stations, dtype=np.int64),
        np.asarray(values, dtype=np.int64),
    )


@pytest.mark.parametrize("seed", range(8))
def test_injection_round_indices_parity(seed):
    rng = np.random.default_rng(seed)
    rounds = int(rng.integers(0, 200))
    counts = rng.integers(0, 3, size=rounds)
    offsets = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
    )
    jit = _accel._injection_round_indices_jit(offsets)
    ref = _accel._injection_round_indices_np(offsets)
    assert jit.dtype == ref.dtype == np.int64
    assert jit.tolist() == ref.tolist()


@pytest.mark.parametrize("seed", range(8))
def test_segment_round_totals_parity(seed):
    rng = np.random.default_rng(100 + seed)
    rounds = int(rng.integers(1, 120))
    offsets, _, values = _random_delta_csr(rng, rounds, n=9)
    initial = int(rng.integers(0, 50))
    jit = _accel._segment_round_totals_jit(offsets, values, np.int64(initial))
    ref = _accel._segment_round_totals_np(offsets, values, initial)
    assert jit.shape == ref.shape == (rounds,)
    assert jit.tolist() == ref.tolist()


def test_segment_round_totals_empty_segment():
    offsets = np.zeros(1, dtype=np.int64)
    values = np.zeros(0, dtype=np.int64)
    assert _accel._segment_round_totals_jit(offsets, values, np.int64(7)).tolist() == []
    assert _accel._segment_round_totals_np(offsets, values, 7).tolist() == []


@pytest.mark.parametrize("seed", range(8))
def test_per_station_flow_parity(seed):
    rng = np.random.default_rng(200 + seed)
    n = int(rng.integers(2, 12))
    rounds = int(rng.integers(1, 120))
    _, stations, values = _random_delta_csr(rng, rounds, n)
    base = rng.integers(0, 20, size=n).astype(np.int64)
    jit_sizes, jit_peaks = _accel._per_station_flow_jit(
        stations, values, base.copy()
    )
    np_sizes, np_peaks = _accel._per_station_flow_np(
        stations, values, base.copy()
    )
    assert jit_sizes.tolist() == np_sizes.tolist()
    assert jit_peaks.tolist() == np_peaks.tolist()
    # Peaks never undershoot the base sizes.
    assert (np_peaks >= base).all()


def test_per_station_flow_empty_deltas():
    base = np.asarray([3, 0, 5], dtype=np.int64)
    empty = np.zeros(0, dtype=np.int64)
    for impl in (_accel._per_station_flow_jit, _accel._per_station_flow_np):
        sizes, peaks = impl(empty, empty, base.copy())
        assert sizes.tolist() == base.tolist()
        assert peaks.tolist() == base.tolist()


@pytest.mark.parametrize("seed", range(8))
def test_count_transmitting_parity(seed):
    rng = np.random.default_rng(300 + seed)
    rounds = int(rng.integers(0, 300))
    transmitters = rng.integers(-1, 6, size=rounds).astype(np.int64)
    jit = int(_accel._count_transmitting_jit(transmitters))
    ref = _accel._count_transmitting_np(transmitters)
    assert jit == ref == int((transmitters >= 0).sum())


def test_public_wrappers_agree_with_both_legs():
    """The public entry points dispatch on HAVE_NUMBA; whatever leg they
    picked must agree with both underlying implementations."""
    rng = np.random.default_rng(7)
    offsets, stations, values = _random_delta_csr(rng, rounds=40, n=6)
    base = rng.integers(0, 10, size=6).astype(np.int64)

    assert (
        _accel.injection_round_indices(offsets).tolist()
        == _accel._injection_round_indices_np(offsets).tolist()
    )
    assert (
        _accel.segment_round_totals(offsets, values, 5).tolist()
        == _accel._segment_round_totals_np(offsets, values, 5).tolist()
    )
    sizes, peaks = _accel.per_station_flow(stations, values, base.copy())
    ref_sizes, ref_peaks = _accel._per_station_flow_np(stations, values, base.copy())
    assert sizes.tolist() == ref_sizes.tolist()
    assert peaks.tolist() == ref_peaks.tolist()
    transmitters = np.asarray([-1, 2, -1, 0, 5], dtype=np.int64)
    assert _accel.count_transmitting(transmitters) == 3
