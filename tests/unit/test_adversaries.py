"""Unit tests for the adversary implementations (base, patterns, stochastic, traces)."""

import pytest

from repro.adversary import (
    AdaptiveStarvationAdversary,
    AlternatingPairAdversary,
    BurstThenIdleAdversary,
    GroupLocalAdversary,
    HotspotAdversary,
    InjectionTrace,
    LeastOnPairAdversary,
    LeastOnStationAdversary,
    NoInjectionAdversary,
    RandomWalkAdversary,
    RecordingAdversary,
    ReplayAdversary,
    RoundRobinAdversary,
    SaturatingAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
    UniformRandomAdversary,
)
from repro.channel.engine import AdversaryView
from repro.core.schedule import PeriodicSchedule


def drive(adversary, n, rounds):
    """Bind and run an adversary standalone, returning its injections per round."""
    adversary.bind(n)
    view = AdversaryView(n=n)
    per_round = []
    for t in range(rounds):
        injections = adversary.inject(t, view)
        per_round.append(injections)
        view.awake_history.append(tuple(range(n)))
    return per_round


class TestAdversaryBase:
    def test_bind_required(self):
        adversary = SingleTargetAdversary(0.5, 1.0)
        with pytest.raises(RuntimeError):
            adversary.inject(0, AdversaryView(n=4))

    def test_bind_rejects_tiny_system(self):
        with pytest.raises(ValueError):
            SingleTargetAdversary(0.5, 1.0).bind(1)

    def test_injection_respects_budget(self):
        per_round = drive(SingleTargetAdversary(0.5, 1.0), 4, 20)
        counts = [len(r) for r in per_round]
        # Never more than burstiness in a round, and about rho per round on average.
        assert max(counts) <= 1
        assert sum(counts) <= 0.5 * 20 + 1.0 + 1e-9

    def test_packets_carry_injection_metadata(self):
        per_round = drive(SingleTargetAdversary(1.0, 1.0, source=2, destination=3), 5, 3)
        station, packet = per_round[0][0]
        assert station == 2
        assert packet.origin == 2
        assert packet.destination == 3
        assert packet.injected_at == 0


class TestPatterns:
    def test_no_injection(self):
        per_round = drive(NoInjectionAdversary(), 4, 10)
        assert all(len(r) == 0 for r in per_round)

    def test_single_target_validation(self):
        with pytest.raises(ValueError):
            SingleTargetAdversary(0.5, 1.0, source=1, destination=1)
        with pytest.raises(ValueError):
            SingleTargetAdversary(0.5, 1.0, source=9, destination=1).bind(4)

    def test_spray_never_targets_source(self):
        per_round = drive(SingleSourceSprayAdversary(1.0, 2.0, source=1), 5, 30)
        for injections in per_round:
            for station, packet in injections:
                assert station == 1
                assert packet.destination != 1

    def test_round_robin_covers_all_sources(self):
        per_round = drive(RoundRobinAdversary(1.0, 1.0), 4, 20)
        sources = {station for r in per_round for station, _ in r}
        assert sources == {0, 1, 2, 3}

    def test_round_robin_rejects_zero_offset(self):
        with pytest.raises(ValueError):
            RoundRobinAdversary(0.5, 1.0, offset=0)

    def test_alternating_pair_alternates(self):
        per_round = drive(AlternatingPairAdversary(1.0, 1.0), 4, 10)
        destinations = [p.destination for r in per_round for _, p in r]
        assert set(destinations[:2]) == {0, 2}

    def test_alternating_pair_requires_distinct_stations(self):
        with pytest.raises(ValueError):
            AlternatingPairAdversary(1.0, 1.0, source=1, destination_a=1, destination_b=2)

    def test_saturating_fills_every_round(self):
        per_round = drive(SaturatingAdversary(1.0, 1.0), 4, 20)
        assert all(len(r) >= 1 for r in per_round)

    def test_burst_then_idle_is_silent_between_bursts(self):
        adversary = BurstThenIdleAdversary(0.5, 4.0, idle_rounds=4)
        per_round = drive(adversary, 4, 20)
        counts = [len(r) for r in per_round]
        assert counts[0] == 0
        assert max(counts) >= 2  # bursts released in a lump
        assert sum(1 for c in counts if c == 0) >= 12

    def test_burst_then_idle_validation(self):
        with pytest.raises(ValueError):
            BurstThenIdleAdversary(0.5, 1.0, idle_rounds=0)
        with pytest.raises(ValueError):
            BurstThenIdleAdversary(0.5, 1.0, source=1, destination=1)

    def test_group_local_keeps_traffic_inside_block(self):
        adversary = GroupLocalAdversary(1.0, 1.0, group_start=2, group_size=3)
        per_round = drive(adversary, 8, 30)
        block = {2, 3, 4}
        for injections in per_round:
            for station, packet in injections:
                assert station in block
                assert packet.destination in block

    def test_group_local_needs_two_stations(self):
        with pytest.raises(ValueError):
            GroupLocalAdversary(1.0, 1.0, group_size=1)


class TestStochastic:
    def test_uniform_random_is_reproducible(self):
        a = drive(UniformRandomAdversary(0.6, 2.0, seed=42), 6, 50)
        b = drive(UniformRandomAdversary(0.6, 2.0, seed=42), 6, 50)
        pairs_a = [(s, p.destination) for r in a for s, p in r]
        pairs_b = [(s, p.destination) for r in b for s, p in r]
        assert pairs_a == pairs_b

    def test_uniform_random_different_seeds_differ(self):
        a = drive(UniformRandomAdversary(0.9, 3.0, seed=1), 6, 80)
        b = drive(UniformRandomAdversary(0.9, 3.0, seed=2), 6, 80)
        pairs_a = [(s, p.destination) for r in a for s, p in r]
        pairs_b = [(s, p.destination) for r in b for s, p in r]
        assert pairs_a != pairs_b

    def test_hotspot_targets_hot_station(self):
        per_round = drive(HotspotAdversary(1.0, 2.0, hot_station=3, hot_fraction=1.0), 6, 40)
        destinations = [p.destination for r in per_round for _, p in r]
        assert destinations and all(d == 3 for d in destinations)

    def test_hotspot_fraction_validation(self):
        with pytest.raises(ValueError):
            HotspotAdversary(0.5, 1.0, hot_fraction=1.5)

    def test_random_walk_runs_and_respects_self_rule(self):
        per_round = drive(RandomWalkAdversary(0.8, 2.0, seed=3), 6, 60)
        for injections in per_round:
            for station, packet in injections:
                assert station != packet.destination

    def test_seed_appears_in_description(self):
        assert "seed=42" in UniformRandomAdversary(0.5, 1.0, seed=42).describe()
        assert "seed=7" in HotspotAdversary(0.5, 1.0, seed=7).describe()

    @pytest.mark.parametrize(
        "make",
        [
            lambda: UniformRandomAdversary(0.9, 3.0, seed=42),
            lambda: HotspotAdversary(0.9, 3.0, seed=42),
            lambda: RandomWalkAdversary(0.9, 3.0, seed=42),
        ],
    )
    def test_reset_rng_replays_the_demand_stream(self, make):
        adversary = make().bind(6)
        view = AdversaryView(n=6)
        first = [list(adversary.demand(t, 3, view)) for t in range(30)]
        adversary.reset_rng()
        second = [list(adversary.demand(t, 3, view)) for t in range(30)]
        assert first == second

    def test_reset_rng_replays_a_full_run(self):
        # Through inject(), so the leaky-bucket constraint participates:
        # a replay must see the same per-round budgets, not leftover slack.
        adversary = UniformRandomAdversary(0.9, 1.0, seed=5)
        first = drive(adversary, 5, 50)
        adversary.reset_rng()
        second = drive(adversary, 5, 50)
        pairs = lambda rounds: [
            (s, p.destination, p.injected_at) for r in rounds for s, p in r
        ]
        assert pairs(first) == pairs(second)


class TestAdaptive:
    def test_least_on_station_picks_starved_station(self):
        # Station 3 never appears in the schedule's awake sets.
        schedule = PeriodicSchedule(4, [[0, 1], [1, 2], [0, 2]])
        adversary = LeastOnStationAdversary(0.9, 1.0, schedule, horizon=30)
        adversary.bind(4)
        assert adversary.victim == 3

    def test_least_on_pair_picks_never_coscheduled_pair(self):
        # Stations 0 and 3 are never awake together.
        schedule = PeriodicSchedule(4, [[0, 1], [1, 3], [0, 2], [2, 3]])
        adversary = LeastOnPairAdversary(0.9, 1.0, schedule, horizon=40)
        adversary.bind(4)
        assert set(adversary.pair) in ({0, 3}, {3, 0})

    def test_horizon_must_be_positive(self):
        schedule = PeriodicSchedule(3, [[0, 1]])
        with pytest.raises(ValueError):
            LeastOnStationAdversary(0.5, 1.0, schedule, horizon=0)
        with pytest.raises(ValueError):
            LeastOnPairAdversary(0.5, 1.0, schedule, horizon=0)

    def test_adaptive_starvation_targets_least_on_station(self):
        adversary = AdaptiveStarvationAdversary(1.0, 1.0)
        adversary.bind(4)
        view = AdversaryView(n=4)
        # History: station 3 has been on the least.
        view.awake_history = [(0, 1, 2), (0, 1, 2), (0, 1, 3)]
        injections = adversary.inject(0, view)
        assert injections
        for station, packet in injections:
            assert packet.destination == 3
            assert station != 3


class TestTraces:
    def test_record_and_replay_round_trip(self):
        inner = SingleTargetAdversary(0.5, 2.0)
        recorder = RecordingAdversary(inner)
        original = drive(recorder, 4, 30)
        original_pairs = [
            (t, s, p.destination)
            for t, injections in enumerate(original)
            for s, p in injections
        ]
        replay = ReplayAdversary(0.5, 2.0, recorder.trace)
        replayed = drive(replay, 4, 30)
        replayed_pairs = [
            (t, s, p.destination)
            for t, injections in enumerate(replayed)
            for s, p in injections
        ]
        assert original_pairs == replayed_pairs

    def test_trace_conformance_check(self):
        trace = InjectionTrace.from_entries([(0, 0, 1), (0, 0, 1), (0, 0, 1)])
        assert trace.conforms_to(1.0, 2.0)
        assert not trace.conforms_to(0.5, 1.0)

    def test_replay_rejects_nonconforming_trace(self):
        trace = InjectionTrace.from_entries([(0, 0, 1)] * 10)
        with pytest.raises(ValueError):
            ReplayAdversary(0.1, 1.0, trace).bind(4)

    def test_replay_rejects_unknown_stations(self):
        trace = InjectionTrace.from_entries([(0, 7, 1)])
        with pytest.raises(ValueError):
            ReplayAdversary(1.0, 1.0, trace).bind(4)

    def test_per_round_counts_padding(self):
        trace = InjectionTrace.from_entries([(2, 0, 1)])
        assert trace.per_round_counts(5) == [0, 0, 1, 0, 0]
