"""Unit tests for Orchestra (Section 3.1) and Count-Hop (Section 4.1)."""

import pytest

from repro.adversary import (
    NoInjectionAdversary,
    SaturatingAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
)
from repro.algorithms import CountHop, Orchestra
from repro.analysis import bounds
from repro.sim import run_simulation


class TestOrchestraStructure:
    def test_properties(self):
        algo = Orchestra(6)
        props = algo.properties()
        assert props.energy_cap == 3
        assert not props.oblivious and props.direct and not props.plain_packet

    def test_queue_bound_helper(self):
        assert Orchestra(6).queue_bound(2.0) == pytest.approx(2 * 216 + 2)

    def test_conductor_is_always_awake_and_transmits(self):
        result = run_simulation(
            Orchestra(5), NoInjectionAdversary(), 4 * 4, record_trace=True
        )
        # With no traffic every round still carries a (light) conductor message.
        assert all(e.outcome.name == "HEARD" for e in result.trace)
        assert all(e.message.sender in range(5) for e in result.trace)

    def test_at_most_three_stations_awake(self):
        result = run_simulation(
            Orchestra(6), SaturatingAdversary(1.0, 2.0), 3000, record_trace=True
        )
        assert max(e.energy for e in result.trace) <= 3

    def test_baton_starts_at_station_zero(self):
        result = run_simulation(
            Orchestra(5), NoInjectionAdversary(), 4, record_trace=True
        )
        assert all(e.message.sender == 0 for e in result.trace)


class TestOrchestraRouting:
    def test_delivers_under_light_load(self):
        result = run_simulation(
            Orchestra(5), SingleTargetAdversary(0.2, 1.0), 4000
        )
        assert result.summary.delivered > 0
        assert result.summary.delivery_ratio > 0.8
        assert result.stable

    def test_stable_at_rate_one(self):
        result = run_simulation(Orchestra(5), SaturatingAdversary(1.0, 2.0), 5000)
        assert result.stable
        assert result.summary.max_queue <= Orchestra(5).queue_bound(2.0)

    def test_stable_at_rate_one_single_target(self):
        result = run_simulation(
            Orchestra(5), SingleTargetAdversary(1.0, 2.0), 5000
        )
        assert result.stable
        assert result.summary.max_queue <= Orchestra(5).queue_bound(2.0)

    def test_exactly_once_delivery_is_engine_checked(self):
        # The collector raises on duplicate delivery; completing the run is
        # the assertion that Orchestra never double-delivers.
        result = run_simulation(
            Orchestra(6), SingleSourceSprayAdversary(0.8, 2.0), 4000
        )
        assert result.summary.delivered <= result.summary.injected


class TestCountHopStructure:
    def test_properties(self):
        props = CountHop(6).properties()
        assert props.energy_cap == 2
        assert not props.oblivious and props.direct and not props.plain_packet

    def test_latency_bound_helper(self):
        assert CountHop(5).latency_bound(0.5, 2.0) == pytest.approx(108.0)
        assert CountHop(5).latency_bound(1.0, 2.0) == float("inf")

    def test_warmup_phase_is_silent(self):
        result = run_simulation(
            CountHop(5), NoInjectionAdversary(), 5, record_trace=True
        )
        assert all(e.outcome.name == "SILENCE" for e in result.trace)
        assert all(e.energy == 0 for e in result.trace)

    def test_at_most_two_stations_awake(self):
        result = run_simulation(
            CountHop(5), SingleSourceSprayAdversary(0.6, 2.0), 2000, record_trace=True
        )
        assert max(e.energy for e in result.trace) <= 2


class TestCountHopRouting:
    def test_delivers_under_light_load(self):
        result = run_simulation(CountHop(5), SingleTargetAdversary(0.3, 1.0), 3000)
        assert result.summary.delivery_ratio > 0.9
        assert result.stable

    def test_universal_for_moderate_rates(self):
        for rho in (0.3, 0.6, 0.8):
            result = run_simulation(
                CountHop(5), SingleSourceSprayAdversary(rho, 2.0), 5000
            )
            assert result.stable, f"Count-Hop unstable at rho={rho}"

    def test_latency_within_implementation_bound(self):
        rho, beta = 0.5, 2.0
        result = run_simulation(CountHop(5), SingleSourceSprayAdversary(rho, beta), 5000)
        assert result.latency <= 2 * bounds.count_hop_latency_bound(5, rho, beta)

    def test_traffic_to_coordinator_is_delivered(self):
        # Station 0 is the coordinator; packets addressed to it must arrive.
        result = run_simulation(
            CountHop(5), SingleTargetAdversary(0.3, 1.0, source=2, destination=0), 3000
        )
        assert result.summary.delivery_ratio > 0.9

    def test_traffic_from_coordinator_is_delivered(self):
        result = run_simulation(
            CountHop(5), SingleTargetAdversary(0.3, 1.0, source=0, destination=3), 3000
        )
        assert result.summary.delivery_ratio > 0.9
