"""Unit tests for the fault-injection layer and the sweep manifest."""

import json

import pytest

from repro.sim import (
    FailedResult,
    FaultPlan,
    SweepManifest,
    TransientFault,
)
from repro.sim.faults import (
    WORKER_FAULT_KINDS,
    in_worker_process,
)
from repro.sim.manifest import MANIFEST_VERSION
from repro.sim.specs import RunSpec


def _spec(rho=0.4, label=None) -> RunSpec:
    return RunSpec(
        algorithm="count-hop",
        algorithm_params={"n": 4},
        adversary="single-target",
        adversary_params={"rho": rho, "beta": 1.0},
        rounds=200,
        label=label,
    )


class TestFaultPlanCoin:
    def test_decision_is_a_pure_function(self):
        plan = FaultPlan(seed=7, transient_rate=0.5, fault_budget=100)
        decisions = [plan.decide("transient", "abc123", a) for a in range(50)]
        replayed = [plan.decide("transient", "abc123", a) for a in range(50)]
        assert decisions == replayed
        # A fresh, equal plan replays the same schedule too (no hidden state).
        again = FaultPlan(seed=7, transient_rate=0.5, fault_budget=100)
        assert [again.decide("transient", "abc123", a) for a in range(50)] == decisions

    def test_seed_changes_the_schedule(self):
        hashes = [f"hash{i}" for i in range(200)]
        a = FaultPlan(seed=1, transient_rate=0.5, fault_budget=10)
        b = FaultPlan(seed=2, transient_rate=0.5, fault_budget=10)
        fires_a = [a.decide("transient", h, 0) for h in hashes]
        fires_b = [b.decide("transient", h, 0) for h in hashes]
        assert fires_a != fires_b
        # And the rate is roughly honoured (coin is uniform on [0, 1)).
        assert 40 < sum(fires_a) < 160

    def test_rate_zero_never_fires_rate_one_always_fires(self):
        silent = FaultPlan(seed=3, fault_budget=10)
        loud = FaultPlan(seed=3, transient_rate=1.0, fault_budget=10)
        for attempt in range(10):
            assert not silent.decide("transient", "h", attempt)
            assert loud.decide("transient", "h", attempt)

    def test_fault_budget_bounds_faulted_attempts(self):
        plan = FaultPlan(seed=5, transient_rate=1.0, fault_budget=2)
        assert plan.decide("transient", "h", 0)
        assert plan.decide("transient", "h", 1)
        assert not plan.decide("transient", "h", 2)
        assert not plan.decide("transient", "h", 99)

    def test_kinds_draw_independent_coins(self):
        plan = FaultPlan(
            seed=9, kill_rate=0.5, transient_rate=0.5, fault_budget=1
        )
        hashes = [f"h{i}" for i in range(200)]
        kills = [plan.decide("kill", h, 0) for h in hashes]
        transients = [plan.decide("transient", h, 0) for h in hashes]
        assert kills != transients

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(kill_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(fault_budget=-1)
        with pytest.raises(ValueError):
            FaultPlan(stall_seconds=-1.0)

    def test_active(self):
        assert not FaultPlan().active
        assert FaultPlan(transient_rate=0.1).active
        assert FaultPlan(corrupt_rate=0.1).active


class TestFaultPlanWorkerSide:
    def test_worker_fault_first_kind_wins(self):
        plan = FaultPlan(
            seed=1, kill_rate=1.0, stall_rate=1.0, transient_rate=1.0, fault_budget=1
        )
        assert plan.worker_fault("h", 0) == WORKER_FAULT_KINDS[0] == "kill"
        assert plan.worker_fault("h", 1) is None  # past the budget

    def test_kill_degrades_to_transient_in_process(self):
        # This test process is the orchestrator, not a pool worker, so an
        # injected kill must *not* os._exit it.
        assert not in_worker_process()
        plan = FaultPlan(seed=1, kill_rate=1.0, fault_budget=1)
        with pytest.raises(TransientFault, match="degraded to a transient"):
            plan.apply_in_worker("h", 0)

    def test_transient_raises_and_stall_returns(self):
        plan = FaultPlan(seed=1, transient_rate=1.0, fault_budget=1)
        with pytest.raises(TransientFault, match="injected transient"):
            plan.apply_in_worker("h", 0)
        stall = FaultPlan(seed=1, stall_rate=1.0, stall_seconds=0.0, fault_budget=1)
        stall.apply_in_worker("h", 0)  # sleeps 0s, then the run proceeds

    def test_budgeted_attempt_is_clean(self):
        plan = FaultPlan(
            seed=1, kill_rate=1.0, stall_rate=1.0, transient_rate=1.0, fault_budget=1
        )
        plan.apply_in_worker("h", 1)  # no fault: attempt >= budget


class TestFaultPlanSerialisation:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=42,
            kill_rate=0.1,
            stall_rate=0.2,
            transient_rate=0.3,
            corrupt_rate=0.4,
            stall_seconds=0.5,
            fault_budget=3,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_stamp_carries_the_attempt(self):
        plan = FaultPlan(seed=42, transient_rate=0.3)
        stamp = plan.stamp(3)
        assert stamp["attempt"] == 3
        assert FaultPlan.from_dict(stamp) == plan

    def test_apply_stamp_replays_the_worker_fault(self):
        plan = FaultPlan(seed=1, transient_rate=1.0, fault_budget=2)
        with pytest.raises(TransientFault):
            FaultPlan.apply_stamp(plan.stamp(0), "h")
        FaultPlan.apply_stamp(plan.stamp(5), "h")  # budgeted: clean


class TestFailedResult:
    def test_describe_and_label(self):
        spec = _spec(label="poison")
        failure = FailedResult(
            spec=spec,
            error="boom",
            error_type="ValueError",
            attempts=3,
            fault_events=["attempt 0: ValueError: boom"],
        )
        assert failure.failed is True
        assert failure.spec_hash == spec.spec_hash()
        assert failure.label == "poison"
        assert failure.describe() == "FAILED after 3 attempt(s): ValueError: boom"

    def test_label_falls_back_to_matchup(self):
        failure = FailedResult(
            spec=_spec(), error="x", error_type="E", attempts=1
        )
        assert failure.label == "count-hop vs single-target"


class TestSweepManifest:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "sweep.json"
        manifest = SweepManifest(path)
        done_spec, failed_spec, pending_spec = (
            _spec(0.1, "a"), _spec(0.3, "b"), _spec(0.5, "c")
        )
        manifest.record_pending(pending_spec)
        manifest.record_done(done_spec, attempts=1)
        manifest.record_failed(
            failed_spec,
            FailedResult(
                spec=failed_spec,
                error="gave up",
                error_type="TransientFault",
                attempts=3,
                fault_events=["attempt 0: TransientFault: gave up"],
            ),
        )
        assert manifest.counts() == {"pending": 1, "done": 1, "failed": 1}
        assert len(manifest) == 3

        # Records land in the append-only event log; compaction folds
        # them into a consistent JSON snapshot.
        manifest.compact()
        data = json.loads(path.read_text("utf-8"))
        assert data["version"] == MANIFEST_VERSION
        assert len(data["entries"]) == 3

        resumed = SweepManifest(path, resume=True)
        assert resumed.resumed
        assert resumed.counts() == manifest.counts()
        assert resumed.prior(done_spec)["status"] == "done"

    def test_prior_failure_reconstruction(self, tmp_path):
        path = tmp_path / "sweep.json"
        manifest = SweepManifest(path)
        spec = _spec(0.3, "b")
        manifest.record_failed(
            spec,
            FailedResult(
                spec=spec,
                error="gave up",
                error_type="TransientFault",
                attempts=3,
                fault_events=["e1", "e2"],
            ),
        )
        resumed = SweepManifest(path, resume=True)
        failure = resumed.prior_failure(spec)
        assert isinstance(failure, FailedResult)
        assert failure.error == "gave up"
        assert failure.error_type == "TransientFault"
        assert failure.attempts == 3
        assert failure.fault_events == ["e1", "e2"]
        assert resumed.prior_failure(_spec(0.9)) is None

    def test_done_clears_a_prior_error_and_keeps_attempts(self, tmp_path):
        manifest = SweepManifest(tmp_path / "m.json")
        spec = _spec()
        manifest.record_attempt(spec, 2, "attempt 1: E: x")
        manifest.record_done(spec)
        entry = manifest.prior(spec)
        assert entry["status"] == "done"
        assert entry["attempts"] == 2  # history preserved
        assert "error" not in entry

    def test_without_resume_an_existing_file_is_replaced(self, tmp_path):
        path = tmp_path / "m.json"
        old = SweepManifest(path)
        old.record_done(_spec(0.1))
        fresh = SweepManifest(path)  # resume=False
        assert not fresh.resumed
        assert len(fresh) == 0
        fresh.record_done(_spec(0.2))
        assert len(SweepManifest(path, resume=True)) == 1

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"version": 999, "entries": {}}))
        with pytest.raises(ValueError, match="unsupported version"):
            SweepManifest(path, resume=True)

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("not json {")
        with pytest.raises(ValueError, match="unreadable"):
            SweepManifest(path, resume=True)


class TestFaultPlanOffset:
    def test_with_offset_shifts_the_effective_attempt(self):
        plan = FaultPlan(seed=11, transient_rate=0.5, fault_budget=100)
        base = [plan.decide("transient", "h", a) for a in range(20)]
        shifted = plan.with_offset(5)
        # Attempt a under offset 5 draws the coin of base attempt a + 5.
        assert [shifted.decide("transient", "h", a) for a in range(15)] == base[5:]

    def test_offset_counts_against_the_budget(self):
        plan = FaultPlan(seed=11, transient_rate=1.0, fault_budget=3)
        # Offset at/past the budget: no attempt can fault any more.
        assert not any(
            plan.with_offset(3).decide("transient", "h", a) for a in range(10)
        )
        # Offset 2 leaves exactly one budgeted effective attempt.
        fired = [plan.with_offset(2).decide("transient", "h", a) for a in range(10)]
        assert fired == [True] + [False] * 9

    def test_offset_round_trips_through_dicts(self):
        plan = FaultPlan(
            seed=4, lease_death_rate=0.25, attempt_offset=2, fault_budget=7
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        # Old stamps without the new keys still load (back-compat).
        legacy = {"seed": 4, "transient_rate": 0.5}
        loaded = FaultPlan.from_dict(legacy)
        assert loaded.lease_death_rate == 0.0
        assert loaded.attempt_offset == 0

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="attempt_offset"):
            FaultPlan(attempt_offset=-1)


class TestLeaseDeathCoin:
    def test_pure_and_keyed_on_takeovers(self):
        plan = FaultPlan(seed=9, lease_death_rate=0.5, fault_budget=100)
        decisions = [plan.lease_death("shard-0001", t) for t in range(50)]
        assert decisions == [plan.lease_death("shard-0001", t) for t in range(50)]
        shards = [f"shard-{i:04d}" for i in range(200)]
        fired = sum(plan.lease_death(s, 0) for s in shards)
        assert 40 < fired < 160

    def test_budget_bounds_deaths_per_shard(self):
        plan = FaultPlan(seed=9, lease_death_rate=1.0, fault_budget=2)
        deaths = [plan.lease_death("shard-0000", t) for t in range(10)]
        assert deaths == [True, True] + [False] * 8

    def test_not_shifted_by_attempt_offset(self):
        # The takeover count *is* the global counter; with_offset must
        # not double-shift it.
        plan = FaultPlan(seed=9, lease_death_rate=0.5, fault_budget=100)
        shifted = plan.with_offset(7)
        assert [plan.lease_death("s", t) for t in range(20)] == [
            shifted.lease_death("s", t) for t in range(20)
        ]

    def test_lease_rate_does_not_fire_worker_faults(self):
        plan = FaultPlan(seed=9, lease_death_rate=1.0, fault_budget=5)
        assert plan.active
        assert plan.worker_fault("h", 0) is None


class TestManifestEventLog:
    def test_records_append_instead_of_rewriting(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = SweepManifest(path)
        for i in range(5):
            manifest.record_done(_spec(0.1 * (i + 1)))
        # No snapshot yet — everything lives in the event log.
        assert not path.exists()
        events = manifest.events_path.read_text().splitlines()
        assert len(events) == 5
        # Each line is one self-contained absolute-state event.
        event = json.loads(events[0])
        assert event["entry"]["status"] == "done"

    def test_resume_replays_events_without_a_snapshot(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = SweepManifest(path)
        spec = _spec(0.2)
        manifest.record_attempt(spec, 1, "attempt 0: E: x")
        manifest.record_done(spec, attempts=1)
        resumed = SweepManifest(path, resume=True)
        assert resumed.prior(spec)["status"] == "done"
        assert resumed.prior(spec)["attempts"] == 1

    def test_compaction_folds_log_into_snapshot(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = SweepManifest(path)
        manifest.record_done(_spec(0.1))
        manifest.record_done(_spec(0.2))
        manifest.compact()
        assert not manifest.events_path.exists()
        data = json.loads(path.read_text())
        assert len(data["entries"]) == 2
        assert len(SweepManifest(path, resume=True)) == 2

    def test_auto_compaction_every_n_events(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = SweepManifest(path, compact_every=3)
        for i in range(7):
            manifest.record_done(_spec(0.05 * (i + 1)))
        # 7 events with compact_every=3: two compactions, one event left.
        data = json.loads(path.read_text())
        assert len(data["entries"]) == 6
        assert len(manifest.events_path.read_text().splitlines()) == 1
        assert len(SweepManifest(path, resume=True)) == 7

    def test_replay_on_top_of_snapshot_is_idempotent(self, tmp_path):
        # Crash between snapshot write and log truncation: events already
        # folded into the snapshot replay harmlessly.
        path = tmp_path / "m.json"
        manifest = SweepManifest(path)
        manifest.record_done(_spec(0.1))
        manifest.save()  # snapshot written, log NOT truncated
        assert manifest.events_path.exists()
        resumed = SweepManifest(path, resume=True)
        assert len(resumed) == 1
        assert resumed.counts()["done"] == 1

    def test_torn_final_event_is_dropped(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = SweepManifest(path)
        manifest.record_done(_spec(0.1))
        manifest.record_done(_spec(0.2))
        with manifest.events_path.open("a") as fh:
            fh.write('{"key": "abc", "entry": {"status"')  # crash mid-append
        resumed = SweepManifest(path, resume=True)
        assert len(resumed) == 2

    def test_garbage_mid_log_raises(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = SweepManifest(path)
        manifest.record_done(_spec(0.1))
        with manifest.events_path.open("a") as fh:
            fh.write("not json {\n")
            fh.write('{"key": "x", "entry": {"status": "done"}}\n')
        with pytest.raises(ValueError, match="corrupt sweep manifest log"):
            SweepManifest(path, resume=True)

    def test_fresh_manifest_discards_stale_event_log(self, tmp_path):
        path = tmp_path / "m.json"
        old = SweepManifest(path)
        old.record_done(_spec(0.1))
        old.compact()
        old.record_done(_spec(0.2))  # one event past the snapshot
        fresh = SweepManifest(path)  # resume=False
        assert len(fresh) == 0
        assert not path.exists()
        assert not fresh.events_path.exists()
