"""Unit tests for the analytical bounds, admissibility regimes and Table 1 data."""

import math

import pytest

from repro.analysis import (
    Regime,
    TABLE1_ROWS,
    bounds,
    classify_rate,
    paper_row_for,
    render_comparison,
)


class TestBounds:
    def test_orchestra_queue_bound(self):
        assert bounds.orchestra_queue_bound(10, 5) == 2005

    def test_count_hop_latency_bound(self):
        assert bounds.count_hop_latency_bound(5, 0.5, 2) == pytest.approx(108.0)
        assert math.isinf(bounds.count_hop_latency_bound(5, 1.0, 2))

    def test_count_hop_bound_diverges_near_rate_one(self):
        low = bounds.count_hop_latency_bound(5, 0.5, 1)
        high = bounds.count_hop_latency_bound(5, 0.99, 1)
        assert high > 10 * low

    def test_adjust_window_bound_polynomially_larger_than_count_hop(self):
        n = 64
        assert bounds.adjust_window_latency_bound(n, 0.5, 1) > 10 * bounds.count_hop_latency_bound(n, 0.5, 1)

    def test_k_cycle_thresholds_and_bound(self):
        assert bounds.k_cycle_rate_threshold(10, 4) == pytest.approx(3 / 9)
        assert bounds.k_cycle_latency_bound(10, 2) == pytest.approx(340)
        assert bounds.oblivious_rate_upper_bound(10, 4) == pytest.approx(0.4)
        assert bounds.k_cycle_rate_threshold(10, 4) < bounds.oblivious_rate_upper_bound(10, 4)

    def test_k_clique_thresholds_and_bound(self):
        n, k = 8, 4
        assert bounds.k_clique_rate_threshold(n, k) == pytest.approx(16 / (8 * 12))
        assert bounds.k_clique_latency_rate_threshold(n, k) == pytest.approx(
            bounds.k_clique_rate_threshold(n, k) / 2
        )
        assert bounds.k_clique_latency_bound(n, k, 2) == pytest.approx(
            8 * (64 / 4) * (1 + 2 / 8)
        )

    def test_k_subsets_threshold_matches_impossibility(self):
        n, k = 7, 3
        assert bounds.k_subsets_rate_threshold(n, k) == pytest.approx(
            bounds.oblivious_direct_rate_upper_bound(n, k)
        )

    def test_k_subsets_queue_bound(self):
        assert bounds.k_subsets_queue_bound(5, 2, 1) == 2 * 10 * 26

    def test_latency_bounds_grow_with_n(self):
        for fn in (
            lambda n: bounds.count_hop_latency_bound(n, 0.5, 1),
            lambda n: bounds.adjust_window_latency_bound(n, 0.5, 1),
            lambda n: bounds.k_cycle_latency_bound(n, 1),
            lambda n: bounds.k_clique_latency_bound(n, 2, 1),
        ):
            assert fn(20) > fn(10)

    def test_oblivious_thresholds_grow_with_k(self):
        assert bounds.oblivious_rate_upper_bound(10, 5) > bounds.oblivious_rate_upper_bound(10, 2)
        assert bounds.oblivious_direct_rate_upper_bound(10, 5) > bounds.oblivious_direct_rate_upper_bound(10, 2)


class TestAdmissibility:
    def test_universal_algorithms_cover_everything_below_one(self):
        for name in ("count-hop", "adjust-window"):
            assert classify_rate(name, 8, None, 0.95).regime is Regime.COVERED

    def test_orchestra_covers_rate_one(self):
        assert classify_rate("orchestra", 8, None, 1.0).regime is Regime.COVERED

    def test_k_cycle_regimes(self):
        n, k = 10, 4
        below = 0.5 * bounds.k_cycle_rate_threshold(n, k)
        between = 0.38  # between (k-1)/(n-1) = 1/3 and k/n = 0.4
        above = 0.6
        assert classify_rate("k-cycle", n, k, below).regime is Regime.COVERED
        assert classify_rate("k-cycle", n, k, between).regime is Regime.UNCHARTED
        assert classify_rate("k-cycle", n, k, above).regime is Regime.IMPOSSIBLE

    def test_k_subsets_has_no_uncharted_gap(self):
        n, k = 6, 3
        threshold = bounds.k_subsets_rate_threshold(n, k)
        assert classify_rate("k-subsets", n, k, threshold * 0.9).regime is Regime.COVERED
        assert classify_rate("k-subsets", n, k, threshold * 1.1).regime is Regime.IMPOSSIBLE

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            classify_rate("nope", 5, 2, 0.5)


class TestTable1:
    def test_all_nine_rows_present(self):
        assert len(TABLE1_ROWS) == 9
        keys = {row.key for row in TABLE1_ROWS}
        assert {"orchestra", "count-hop", "adjust-window", "k-cycle",
                "k-clique", "k-subsets"} <= keys
        assert sum(1 for row in TABLE1_ROWS if row.impossibility) == 3

    def test_paper_row_evaluation(self):
        row = paper_row_for("orchestra", n=6, k=3, rho=1.0, beta=2.0)
        assert row["queue_bound"] == pytest.approx(2 * 216 + 2)
        assert math.isinf(row["latency_bound"])
        row = paper_row_for("k-cycle", n=10, k=4, rho=0.2, beta=2.0)
        assert row["rate_threshold"] == pytest.approx(1 / 3)

    def test_render_comparison_contains_all_rows(self):
        rows = [
            {"label": "T1.1 Orchestra", "params": "n=6", "paper": "Q<=434", "measured": "Q=76"},
            {"label": "T1.3 Count-Hop", "params": "n=6", "paper": "L<=152", "measured": "L=120"},
        ]
        text = render_comparison(rows)
        assert "T1.1 Orchestra" in text and "Q=76" in text
        assert text.count("\n") >= 3
