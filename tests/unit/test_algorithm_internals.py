"""Fine-grained behavioural tests of algorithm internals via execution traces.

These tests pin down protocol details that the end-to-end tests cannot
distinguish: Orchestra's season structure and baton movement, Count-Hop's
substage structure, k-Cycle's connector relaying, and Adjust-Window's
gossip encoding.
"""

import pytest

from repro.adversary import NoInjectionAdversary, SingleTargetAdversary
from repro.algorithms import CountHop, KCycle, Orchestra
from repro.algorithms.adjust_window import WindowLayout, _GossipRecord
from repro.channel.feedback import ChannelOutcome
from repro.sim import run_simulation


class TestOrchestraSeasons:
    def test_conductor_rotates_in_name_order_when_nobody_is_big(self):
        n = 5
        result = run_simulation(
            Orchestra(n), NoInjectionAdversary(), 3 * n * (n - 1), record_trace=True
        )
        season_length = n - 1
        for event in result.trace:
            expected_conductor = (event.round_no // season_length) % n
            assert event.message is not None
            assert event.message.sender == expected_conductor

    def test_learner_is_awake_with_the_conductor(self):
        n = 5
        result = run_simulation(
            Orchestra(n), NoInjectionAdversary(), 2 * n * (n - 1), record_trace=True
        )
        season_length = n - 1
        for event in result.trace:
            conductor = (event.round_no // season_length) % n
            musicians = [s for s in range(n) if s != conductor]
            learner = musicians[event.round_no % season_length]
            assert conductor in event.awake
            assert learner in event.awake

    def test_heavy_single_source_keeps_the_baton(self):
        """A station flooded at rate 1 eventually conducts for consecutive seasons."""
        n = 5
        rounds = 4000
        result = run_simulation(
            Orchestra(n),
            SingleTargetAdversary(1.0, 2.0, source=3, destination=1),
            rounds,
            record_trace=True,
        )
        season_length = n - 1
        conductors = [
            result.trace[s * season_length].message.sender
            for s in range(rounds // season_length)
        ]
        # Station 3 must conduct at least two seasons in a row at some point
        # (it becomes big and keeps the baton).
        repeats = any(
            conductors[i] == conductors[i + 1] == 3 for i in range(len(conductors) - 1)
        )
        assert repeats
        assert result.stable

    def test_packets_delivered_only_by_their_origin_conductor(self):
        """Orchestra routes directly: every delivery is transmitted by the packet's origin."""
        result = run_simulation(
            Orchestra(5),
            SingleTargetAdversary(0.5, 1.0, source=2, destination=4),
            2000,
            record_trace=True,
        )
        for event in result.trace:
            if event.delivered_packet is not None:
                assert event.message.sender == event.delivered_packet.origin


class TestCountHopStages:
    def test_coordinator_listens_through_report_substage(self):
        n = 5
        result = run_simulation(
            CountHop(n),
            SingleTargetAdversary(0.4, 1.0, source=2, destination=3),
            600,
            record_trace=True,
        )
        # After the warm-up (n rounds), the coordinator (station 0) is awake
        # in every Report and Assign round.  Deliver substages vary, so just
        # check a sample of early rounds in the first stage.
        for event in result.trace[n : n + 2 * n]:
            assert 0 in event.awake

    def test_never_more_than_two_awake_and_deliveries_direct(self):
        result = run_simulation(
            CountHop(6),
            SingleTargetAdversary(0.5, 2.0, source=3, destination=5),
            3000,
            record_trace=True,
        )
        for event in result.trace:
            assert event.energy <= 2
            if event.delivered_packet is not None:
                assert event.message.sender == event.delivered_packet.origin
                assert event.delivered_packet.destination in event.awake

    def test_light_messages_carry_counts_or_offsets(self):
        result = run_simulation(
            CountHop(5),
            SingleTargetAdversary(0.4, 1.0),
            400,
            record_trace=True,
        )
        light = [e.message for e in result.trace if e.message and e.message.is_light]
        assert light, "Count-Hop coordination uses light messages"
        for message in light:
            assert ("count" in message.control) or ("offset" in message.control)


class TestKCycleRelaying:
    def test_cross_group_packets_are_relayed_by_connectors(self):
        n, k = 9, 3
        algo = KCycle(n, k)
        result = run_simulation(
            KCycle(n, k),
            SingleTargetAdversary(0.05, 1.0, source=0, destination=5),
            4000,
            record_trace=True,
        )
        # Destination 5 is not in station 0's group, so at least one heard
        # transmission must come from a station other than the origin
        # (i.e. a relay forwarded it).
        relayed = [
            e
            for e in result.trace
            if e.message is not None
            and e.message.packet is not None
            and e.message.packet.origin == 0
            and e.message.sender != 0
        ]
        assert relayed, "cross-group traffic must pass through relays"
        assert result.summary.delivered > 0

    def test_awake_set_is_always_one_group(self):
        algo = KCycle(9, 3)
        groups = {frozenset(g) for g in algo.groups}
        result = run_simulation(
            KCycle(9, 3), SingleTargetAdversary(0.1, 1.0), 500, record_trace=True
        )
        for event in result.trace:
            assert frozenset(event.awake) in groups


class TestAdjustWindowGossipEncoding:
    def test_gossip_record_roundtrip(self):
        layout = WindowLayout.for_window(4, 32768)
        record = _GossipRecord(large=True, over_l=False)
        numbers = (1234, 56, 7)
        # Encode the three numbers exactly as the controller does.
        bits = []
        for value in numbers:
            for position in range(layout.lgL):
                shift = layout.lgL - 1 - position
                bits.append((value >> shift) & 1)
        record.bits = bits
        assert record.numbers(layout.lgL) == numbers

    def test_gossip_record_pads_missing_bits_with_zeros(self):
        record = _GossipRecord(large=True)
        record.bits = [1]  # only the first (most significant) bit observed
        size, to_me, below_me = record.numbers(4)
        assert size == 0b1000
        assert to_me == 0 and below_me == 0
