"""Unit tests for PacketQueue and oblivious schedules."""

import pytest

from repro.core.queues import PacketQueue
from repro.core.schedule import AlwaysOnSchedule, PeriodicSchedule


class TestPacketQueue:
    def test_push_and_aging(self, make_packet):
        q = PacketQueue()
        a, b = make_packet(1), make_packet(2)
        q.push(a)
        q.push(b)
        assert q.new_count == 2 and q.old_count == 0
        q.age_all()
        assert q.old_count == 2 and q.new_count == 0

    def test_push_old_is_immediately_old(self, make_packet):
        q = PacketQueue()
        q.push_old(make_packet(1))
        assert q.old_count == 1

    def test_fifo_order_preserved(self, make_packet):
        q = PacketQueue()
        packets = [make_packet(1) for _ in range(5)]
        for p in packets:
            q.push(p)
        q.age_all()
        assert [q.pop_old() for _ in range(5)] == packets

    def test_pop_any_prefers_old(self, make_packet):
        q = PacketQueue()
        old, new = make_packet(1), make_packet(1)
        q.push(old)
        q.age_all()
        q.push(new)
        assert q.pop_any() is old
        assert q.pop_any() is new

    def test_pop_old_for_destination(self, make_packet):
        q = PacketQueue()
        a, b, c = make_packet(1), make_packet(2), make_packet(1)
        for p in (a, b, c):
            q.push(p)
        q.age_all()
        assert q.pop_old_for(2) is b
        assert q.pop_old_for(2) is None
        assert q.pop_old_for(1) is a

    def test_pop_any_for_falls_back_to_new(self, make_packet):
        q = PacketQueue()
        new = make_packet(3)
        q.push(new)
        assert q.pop_any_for(3) is new

    def test_peeks_do_not_remove(self, make_packet):
        q = PacketQueue()
        p = make_packet(2)
        q.push(p)
        q.age_all()
        assert q.peek_old() is p
        assert q.peek_old_for(2) is p
        assert q.peek_any_for(2) is p
        assert len(q) == 1

    def test_peek_matching_predicates(self, make_packet):
        q = PacketQueue()
        a, b = make_packet(1), make_packet(4)
        q.push(a)
        q.age_all()
        q.push(b)
        assert q.peek_old_matching(lambda p: p.destination > 2) is None
        assert q.peek_any_matching(lambda p: p.destination > 2) is b

    def test_remove_specific_packet(self, make_packet):
        q = PacketQueue()
        a, b = make_packet(1), make_packet(2)
        q.push(a)
        q.push(b)
        assert q.remove(a) is True
        assert q.remove(a) is False
        assert list(q) == [b]

    def test_counts_and_destinations(self, make_packet):
        q = PacketQueue()
        for dest in (1, 1, 2, 3):
            q.push(make_packet(dest))
        q.age_all()
        q.push(make_packet(1))
        assert q.count_old_for(1) == 2
        assert q.count_for(1) == 3
        assert q.count_old_matching(lambda p: p.destination >= 2) == 2
        assert q.destinations() == {1, 2, 3}
        assert q.has_old_for([3, 9])
        assert not q.has_old_for([9])

    def test_len_and_bool(self, make_packet):
        q = PacketQueue()
        assert not q and len(q) == 0
        q.push(make_packet(1))
        assert q and len(q) == 1


class TestPeriodicSchedule:
    def test_awake_sets_repeat_with_period(self):
        s = PeriodicSchedule(4, [[0, 1], [2, 3]])
        assert s.period_length == 2
        assert s.awake_set(0) == frozenset({0, 1})
        assert s.awake_set(5) == frozenset({2, 3})
        assert s.is_awake(0, 0) and not s.is_awake(0, 1)

    def test_rejects_unknown_stations(self):
        with pytest.raises(ValueError):
            PeriodicSchedule(3, [[0, 7]])

    def test_rejects_empty_period(self):
        with pytest.raises(ValueError):
            PeriodicSchedule(3, [])

    def test_max_awake(self):
        s = PeriodicSchedule(5, [[0], [1, 2, 3], [4]])
        assert s.max_awake() == 3
        assert s.max_awake(horizon=1) == 1

    def test_on_fraction(self):
        s = PeriodicSchedule(3, [[0], [0, 1]])
        assert s.on_fraction(0, 10) == pytest.approx(1.0)
        assert s.on_fraction(1, 10) == pytest.approx(0.5)
        assert s.on_fraction(2, 10) == pytest.approx(0.0)

    def test_pair_on_fraction_and_minima(self):
        s = PeriodicSchedule(3, [[0, 1], [0, 2]])
        assert s.pair_on_fraction(0, 1, 10) == pytest.approx(0.5)
        assert s.pair_on_fraction(1, 2, 10) == pytest.approx(0.0)
        station, fraction = s.min_on_fraction(10)
        assert fraction == pytest.approx(0.5)
        pair, pair_fraction = s.min_pair_on_fraction(10)
        assert set(pair) == {1, 2}
        assert pair_fraction == pytest.approx(0.0)

    def test_fraction_of_empty_horizon(self):
        s = PeriodicSchedule(3, [[0]])
        assert s.on_fraction(0, 0) == 0.0
        assert s.pair_on_fraction(0, 1, 0) == 0.0


class TestAlwaysOnSchedule:
    def test_everyone_always_on(self):
        s = AlwaysOnSchedule(4)
        assert s.awake_set(123) == frozenset(range(4))
        assert s.max_awake(10) == 4
        assert s.on_fraction(2, 7) == 1.0
