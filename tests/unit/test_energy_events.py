"""Unit tests for energy accounting and execution traces."""

import pytest

from repro.channel.energy import EnergyCapViolation, EnergyMonitor
from repro.channel.events import ExecutionTrace, InjectionEvent, RoundEvent
from repro.channel.feedback import ChannelOutcome
from repro.channel.message import Message
from repro.channel.packet import Packet


class TestEnergyMonitor:
    def test_records_usage(self):
        monitor = EnergyMonitor(cap=None)
        for t, awake in enumerate([1, 3, 2]):
            monitor.observe(t, awake)
        report = monitor.report()
        assert report.rounds == 3
        assert report.total_station_rounds == 6
        assert report.max_awake == 3
        assert report.average_awake == pytest.approx(2.0)

    def test_enforced_cap_raises(self):
        monitor = EnergyMonitor(cap=2, enforce=True)
        monitor.observe(0, 2)
        with pytest.raises(EnergyCapViolation) as excinfo:
            monitor.observe(1, 3)
        assert excinfo.value.round_no == 1
        assert excinfo.value.awake == 3
        assert excinfo.value.cap == 2

    def test_unenforced_cap_counts_violations(self):
        monitor = EnergyMonitor(cap=2, enforce=False)
        monitor.observe(0, 5)
        monitor.observe(1, 1)
        assert monitor.violations == 1
        assert monitor.report().max_awake == 5

    def test_empty_report(self):
        report = EnergyMonitor(cap=1).report()
        assert report.rounds == 0
        assert report.average_awake == 0.0
        assert report.energy_per_round() == 0.0


def _round_event(t, awake=(), outcome=ChannelOutcome.SILENCE, message=None,
                 delivered=None, injections=()):
    return RoundEvent(
        round_no=t,
        awake=tuple(awake),
        transmitters=tuple(m.sender for m in ([message] if message else [])),
        outcome=outcome,
        message=message,
        delivered_packet=delivered,
        injections=tuple(injections),
    )


class TestExecutionTrace:
    def test_round_queries(self):
        p = Packet(destination=1, injected_at=0, origin=0, packet_id=0)
        msg = Message(sender=0, packet=p)
        light = Message(sender=0, control={"x": 1})
        trace = ExecutionTrace()
        trace.append(_round_event(0))
        trace.append(_round_event(1, awake=(0, 1), outcome=ChannelOutcome.HEARD,
                                  message=msg, delivered=p))
        trace.append(_round_event(2, awake=(0,), outcome=ChannelOutcome.HEARD,
                                  message=light))
        trace.append(_round_event(3, awake=(0, 1, 2), outcome=ChannelOutcome.COLLISION))

        assert len(trace) == 4
        assert trace.silent_rounds() == [0]
        assert trace.collision_rounds() == [3]
        assert trace.light_rounds() == [2]
        assert trace.delivered_packets() == [p]
        assert trace.energy_series() == [0, 2, 1, 3]
        assert trace.awake_sets()[3] == (0, 1, 2)
        assert trace[1].energy == 2

    def test_injections_collected_in_order(self):
        p0 = Packet(destination=1, injected_at=0, origin=0, packet_id=0)
        p1 = Packet(destination=2, injected_at=1, origin=0, packet_id=1)
        trace = ExecutionTrace()
        trace.append(_round_event(0, injections=[InjectionEvent(0, 0, p0)]))
        trace.append(_round_event(1, injections=[InjectionEvent(1, 0, p1)]))
        assert [e.packet for e in trace.injections()] == [p0, p1]

    def test_iteration(self):
        trace = ExecutionTrace()
        trace.append(_round_event(0))
        trace.append(_round_event(1))
        assert [e.round_no for e in trace] == [0, 1]


class TestTraceSerialisation:
    def test_round_trip_preserves_every_event(self):
        import json

        p = Packet(destination=1, injected_at=0, origin=0, packet_id=7)
        msg = Message(sender=0, packet=p, control={"big": True, "count": 3},
                      intended_receiver=1)
        light = Message(sender=2, control={"x": 1})
        trace = ExecutionTrace()
        trace.append(_round_event(0, injections=[InjectionEvent(0, 0, p)]))
        trace.append(_round_event(1, awake=(0, 1), outcome=ChannelOutcome.HEARD,
                                  message=msg, delivered=p))
        trace.append(_round_event(2, awake=(2,), outcome=ChannelOutcome.HEARD,
                                  message=light))
        trace.append(_round_event(3, awake=(0, 1, 2),
                                  outcome=ChannelOutcome.COLLISION))

        # Through actual JSON text, not just plain dicts.
        payload = json.dumps(trace.to_jsonable())
        restored = ExecutionTrace.from_jsonable(json.loads(payload))

        assert len(restored) == len(trace)
        assert restored.rounds == trace.rounds
        assert restored.silent_rounds() == trace.silent_rounds()
        assert restored.collision_rounds() == trace.collision_rounds()
        assert restored.light_rounds() == trace.light_rounds()
        assert restored.delivered_packets() == trace.delivered_packets()
        assert [e.packet for e in restored.injections()] == [p]

    def test_round_trip_of_engine_produced_trace(self):
        import json

        from repro.adversary import SingleTargetAdversary
        from repro.algorithms import KCycle
        from repro.sim import run_simulation

        result = run_simulation(
            KCycle(5, 2), SingleTargetAdversary(0.5, 2.0), 120, record_trace=True
        )
        assert result.trace is not None
        payload = json.dumps(result.trace.to_jsonable())
        restored = ExecutionTrace.from_jsonable(json.loads(payload))
        assert restored.rounds == result.trace.rounds

    def test_empty_trace_round_trip(self):
        restored = ExecutionTrace.from_jsonable(ExecutionTrace().to_jsonable())
        assert len(restored) == 0
