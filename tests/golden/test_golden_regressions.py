"""Golden regression tests: pin Table 1 rows and the F2 series to disk.

The simulations are deterministic, so small Table 1 rows and the prefix of
the F2 scaling sweep can be pinned against checked-in expected values.
Any change to the engine, the algorithms, the adversaries or the
orchestration layer that shifts a measured number — even by one round of
latency — fails here, which is the safety net that lets the harness be
refactored (e.g. rewired onto the parallel executor) with confidence.

To intentionally re-baseline after a behaviour-changing fix, regenerate
``table1_rows_expected.json`` with the parameters below and copy
``benchmarks/results/f2_scaling_n.csv`` over ``f2_scaling_n_expected.csv``.
"""

import csv
import json
from pathlib import Path

import pytest

from repro.sim import experiments as exp

GOLDEN_DIR = Path(__file__).parent

TABLE1_CASES = {
    "T1.1": lambda: exp.experiment_orchestra_queue(n=4, rounds=800),
    "T1.3": lambda: exp.experiment_count_hop_latency(n=4, rho=0.5, rounds=1000),
    "T1.5": lambda: exp.experiment_k_cycle_latency(n=5, k=2, rounds=800),
    "T1.8": lambda: exp.experiment_k_subsets_stability(n=4, k=2, rounds=1000),
}


def _assert_measured_equal(measured: dict, expected: dict, context: str) -> None:
    assert set(measured) == set(expected), context
    for key, want in expected.items():
        got = measured[key]
        if isinstance(want, float):
            assert got == pytest.approx(want, rel=1e-9, abs=1e-12), f"{context}: {key}"
        else:
            assert got == want, f"{context}: {key}"


@pytest.mark.parametrize("row", sorted(TABLE1_CASES))
def test_table1_row_matches_golden(row):
    expected = json.loads((GOLDEN_DIR / "table1_rows_expected.json").read_text())
    result = TABLE1_CASES[row]()
    assert result.shape_ok, f"{row} lost its qualitative shape"
    _assert_measured_equal(result.measured, expected[row], row)


def test_table1_row_matches_golden_in_parallel():
    """The parallel executor reproduces the pinned rows bit-identically."""
    expected = json.loads((GOLDEN_DIR / "table1_rows_expected.json").read_text())
    result = exp.experiment_orchestra_queue(n=4, rounds=800, workers=2)
    _assert_measured_equal(result.measured, expected["T1.1"], "T1.1 (workers=2)")


def test_f2_scaling_prefix_matches_checked_in_csv():
    """Regenerating the first F2 sizes reproduces the checked-in series.

    The expected file is a snapshot of ``benchmarks/results/f2_scaling_n.csv``
    (sizes 4..10); regenerating the n=4 and n=6 points with the same
    parameters as the benchmark must reproduce those rows exactly.
    """
    with (GOLDEN_DIR / "f2_scaling_n_expected.csv").open() as fh:
        expected_rows = [row for row in csv.DictReader(fh) if row["n"] in ("4", "6")]
    assert expected_rows, "golden CSV lost its n=4/n=6 rows"

    series = exp.figure_scaling_n(sizes=(4, 6), rho=0.25)
    regenerated = {
        (row["series"], str(row["n"])): row
        for s in series.values()
        for row in s.as_rows()
    }
    assert len(regenerated) == len(expected_rows)
    for want in expected_rows:
        got = regenerated[(want["series"], want["n"])]
        context = f"{want['series']} n={want['n']}"
        assert str(got["latency"]) == want["latency"], context
        assert str(got["max_queue"]) == want["max_queue"], context
        assert float(got["energy_per_round"]) == pytest.approx(
            float(want["energy_per_round"]), abs=1e-9
        ), context
        assert str(got["stable"]) == want["stable"], context
