"""Integration tests: end-to-end correctness of every routing algorithm.

The engine already enforces the two hard correctness conditions (a packet
is only ever delivered to its destination, and at most once); these tests
additionally check *liveness* — injected traffic is actually delivered —
and that every algorithm honours its declared energy cap and message
discipline while doing so.
"""

import pytest

from repro.adversary import (
    BurstThenIdleAdversary,
    RoundRobinAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
    UniformRandomAdversary,
)
from repro.algorithms import AdjustWindow, CountHop, KClique, KCycle, KSubsets, Orchestra
from repro.protocols import MoveBigToFront, OldFirstRoundRobinWithholding, RoundRobinWithholding
from repro.sim import run_simulation

# (name, algorithm factory, a comfortably-stable injection rate, rounds)
CONFIGS = [
    ("orchestra", lambda: Orchestra(6), 0.6, 4000),
    ("count-hop", lambda: CountHop(6), 0.5, 5000),
    ("k-cycle", lambda: KCycle(9, 3), 0.12, 6000),
    ("k-clique", lambda: KClique(8, 4), 0.02, 12000),
    ("k-subsets", lambda: KSubsets(5, 2), 0.08, 10000),
    ("rrw", lambda: RoundRobinWithholding(6), 0.5, 3000),
    ("of-rrw", lambda: OldFirstRoundRobinWithholding(6), 0.5, 3000),
    ("mbtf", lambda: MoveBigToFront(6), 0.5, 3000),
]


@pytest.mark.parametrize("name,factory,rho,rounds", CONFIGS, ids=[c[0] for c in CONFIGS])
class TestLivenessAndSafety:
    def test_most_traffic_delivered_and_cap_respected(self, name, factory, rho, rounds):
        algorithm = factory()
        result = run_simulation(
            algorithm, UniformRandomAdversary(rho, 2.0, seed=13), rounds
        )
        # Engine enforced the energy cap (it would have raised otherwise);
        # double-check the recorded maximum as well.
        assert result.summary.max_energy <= algorithm.energy_cap
        assert result.summary.delivered > 0
        assert result.summary.delivery_ratio > 0.6
        assert result.stable

    def test_single_target_traffic(self, name, factory, rho, rounds):
        algorithm = factory()
        result = run_simulation(
            algorithm, SingleTargetAdversary(rho, 2.0, source=1, destination=4), rounds
        )
        assert result.summary.delivered > 0
        assert result.stable

    def test_bursty_traffic_is_absorbed(self, name, factory, rho, rounds):
        algorithm = factory()
        adversary = BurstThenIdleAdversary(rho, 6.0, idle_rounds=40, source=2, destination=3)
        result = run_simulation(algorithm, adversary, rounds)
        assert result.summary.delivery_ratio > 0.5
        assert result.stable


class TestDrainAfterInjectionStops:
    """After traffic stops, queues must drain completely (every packet delivered)."""

    @pytest.mark.parametrize(
        "name,factory,drain_rounds",
        [
            ("orchestra", lambda: Orchestra(5), 4000),
            ("count-hop", lambda: CountHop(5), 4000),
            ("k-cycle", lambda: KCycle(7, 3), 6000),
            ("k-clique", lambda: KClique(6, 2), 15000),
            ("rrw", lambda: RoundRobinWithholding(5), 2000),
            ("mbtf", lambda: MoveBigToFront(5), 2000),
        ],
        ids=["orchestra", "count-hop", "k-cycle", "k-clique", "rrw", "mbtf"],
    )
    def test_everything_eventually_delivered(self, name, factory, drain_rounds):
        from repro.adversary import InjectionTrace, ReplayAdversary

        # A short burst of traffic at the start, then silence.
        entries = []
        for t in range(20):
            entries.append((t, (t % 4) + 1, (t % 3) + 2 if ((t % 3) + 2) != ((t % 4) + 1) else 0))
        trace = InjectionTrace.from_entries(entries)
        adversary = ReplayAdversary(1.0, 1.0, trace)
        result = run_simulation(factory(), adversary, drain_rounds)
        assert result.summary.injected == len(entries)
        assert result.summary.delivered == result.summary.injected
        assert result.collector.undelivered_packets() == []


class TestPlainPacketDiscipline:
    @pytest.mark.parametrize(
        "factory",
        [lambda: KCycle(9, 3), lambda: KClique(8, 4), lambda: AdjustWindow(3)],
        ids=["k-cycle", "k-clique", "adjust-window"],
    )
    def test_plain_packet_algorithms_send_no_control_bits(self, factory):
        algorithm = factory()
        assert algorithm.properties().plain_packet
        result = run_simulation(
            algorithm,
            RoundRobinAdversary(0.05, 1.0),
            3000,
            record_trace=True,
        )
        for event in result.trace:
            if event.message is not None:
                assert event.message.packet is not None, "plain-packet algorithms never send light messages"
                assert not event.message.control
