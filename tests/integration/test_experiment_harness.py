"""Integration tests for the experiment/figure harness entry points."""

import pytest

from repro.sim import experiments as exp


class TestExperimentResults:
    def test_comparison_row_shape(self):
        outcome = exp.experiment_k_subsets_stability(n=5, k=2, rounds=4000)
        row = outcome.comparison_row()
        assert set(row) == {"label", "params", "paper", "measured"}
        assert outcome.experiment_id in row["label"]
        assert "[ok]" in row["measured"] or "[MISMATCH]" in row["measured"]

    def test_default_adversary_family_size(self):
        family = exp.default_adversary_family(0.5, 1.0)
        assert len(family) == 6
        family = exp.default_adversary_family(0.5, 1.0, include_stochastic=False)
        assert len(family) == 5
        # Factories produce fresh, unbound adversaries each call.
        a, b = family[0](), family[0]()
        assert a is not b and a.n is None


class TestFigureHarness:
    def test_figure_latency_vs_rate_quick(self):
        series = exp.figure_latency_vs_rate(
            n=6, k=3, rates=(0.1, 0.3), rounds=1500
        )
        assert set(series) == {"Count-Hop", "Orchestra", "k-Cycle", "k-Clique"}
        for s in series.values():
            assert len(s.points) == 2

    def test_figure_scaling_n_quick(self):
        series = exp.figure_scaling_n(sizes=(4, 5), rho=0.2, rounds_per_station=200)
        for s in series.values():
            assert [int(v) for v in s.values()] == [4, 5]

    def test_figure_energy_usage_quick(self):
        results = exp.figure_energy_usage(n=6, k=2, rho=0.2, rounds=1200)
        assert "Orchestra" in results and "RRW (uncapped)" in results
        assert results["RRW (uncapped)"].summary.energy_per_round == pytest.approx(6.0)
        assert results["Count-Hop"].summary.energy_per_round <= 2.0 + 1e-9

    def test_figure_queue_trajectories_quick(self):
        results = exp.figure_queue_trajectories(n=7, k=3, rounds=4000)
        assert set(results) == {"below threshold", "at threshold", "above impossibility"}
        assert results["below threshold"].stable

    def test_figure_energy_tradeoff_quick(self):
        series = exp.figure_energy_tradeoff(n=8, caps=(2, 3), rounds=3000)
        assert set(series) == {"k-Cycle", "k-Clique"}
        assert all(len(s.points) == 2 for s in series.values())
