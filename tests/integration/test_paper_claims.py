"""Integration tests reproducing the paper's headline claims (Table 1 + theorems).

These are scaled-down versions of the benchmark experiments: small systems
and short runs, but the same qualitative assertions — stability where the
paper proves stability, divergence where it proves impossibility, and
measured values within the proven bounds where a closed-form bound exists.
"""

import pytest

from repro.adversary import (
    LeastOnPairAdversary,
    LeastOnStationAdversary,
    SaturatingAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
)
from repro.algorithms import CountHop, KClique, KCycle, KSubsets, Orchestra
from repro.analysis import bounds
from repro.sim import run_simulation
from repro.sim.experiments import (
    experiment_cap2_impossibility,
    experiment_count_hop_latency,
    experiment_k_cycle_latency,
    experiment_k_subsets_stability,
    experiment_oblivious_direct_impossibility,
    experiment_oblivious_impossibility,
    experiment_orchestra_queue,
)


class TestTheorem1Orchestra:
    def test_queue_bound_at_rate_one(self):
        n, beta = 5, 2.0
        result = run_simulation(Orchestra(n), SaturatingAdversary(1.0, beta), 4000)
        assert result.stable
        assert result.max_queue <= bounds.orchestra_queue_bound(n, beta)

    def test_experiment_entry_point(self):
        outcome = experiment_orchestra_queue(n=5, rounds=2500)
        assert outcome.shape_ok
        assert outcome.measured["max_queue"] <= outcome.paper["queue_bound"]


class TestTheorem2Cap2Impossibility:
    def test_count_hop_diverges_at_rate_one(self):
        result = run_simulation(CountHop(5), SaturatingAdversary(1.0, 1.0), 5000)
        assert not result.stable
        assert result.max_queue > 100

    def test_experiment_entry_point(self):
        outcome = experiment_cap2_impossibility(n=5, rounds=4000)
        assert outcome.shape_ok

    def test_orchestra_with_cap3_beats_the_cap2_limit(self):
        """The contrast that motivates the energy cap 3: same traffic, cap 3 is stable."""
        adversary = SaturatingAdversary(1.0, 1.0)
        orchestra = run_simulation(Orchestra(5), SaturatingAdversary(1.0, 1.0), 5000)
        count_hop = run_simulation(CountHop(5), adversary, 5000)
        assert orchestra.stable and not count_hop.stable


class TestTheorem3CountHop:
    def test_universal_stability(self):
        for rho in (0.3, 0.7):
            result = run_simulation(CountHop(5), SingleSourceSprayAdversary(rho, 2.0), 5000)
            assert result.stable

    def test_experiment_entry_point(self):
        outcome = experiment_count_hop_latency(n=5, rho=0.5, rounds=4000)
        assert outcome.shape_ok


class TestTheorem5KCycle:
    def test_stable_below_threshold_unstable_above_kn(self):
        n, k = 9, 3
        below = 0.6 * bounds.k_cycle_rate_threshold(n, k)
        stable_run = run_simulation(KCycle(n, k), SingleTargetAdversary(below, 1.0), 8000)
        assert stable_run.stable
        above = min(1.0, 1.6 * bounds.oblivious_rate_upper_bound(n, k))
        schedule = KCycle(n, k).oblivious_schedule()
        adversary = LeastOnStationAdversary(above, 1.0, schedule, horizon=schedule.period_length)
        unstable_run = run_simulation(KCycle(n, k), adversary, 8000)
        assert not unstable_run.stable

    def test_latency_bound(self):
        outcome = experiment_k_cycle_latency(n=7, k=3, rounds=6000)
        assert outcome.shape_ok
        assert outcome.measured["max_latency"] <= bounds.k_cycle_latency_bound(7, 2.0)

    def test_experiment_impossibility_entry_point(self):
        outcome = experiment_oblivious_impossibility(n=6, k=2, rounds=6000)
        assert outcome.shape_ok


class TestTheorem7KClique:
    def test_bounded_latency_below_threshold(self):
        n, k = 6, 2
        rho = 0.8 * bounds.k_clique_latency_rate_threshold(n, k)
        result = run_simulation(KClique(n, k), SingleTargetAdversary(rho, 2.0), 12000)
        assert result.stable
        assert result.latency <= 2 * bounds.k_clique_latency_bound(n, k, 2.0)


class TestTheorems8And9KSubsets:
    def test_stable_at_exact_threshold(self):
        outcome = experiment_k_subsets_stability(n=5, k=2, rounds=8000)
        assert outcome.shape_ok

    def test_unstable_above_threshold(self):
        outcome = experiment_oblivious_direct_impossibility(n=5, k=2, rounds=10000)
        assert outcome.shape_ok

    def test_least_on_pair_adversary_beats_k_clique(self):
        n, k = 6, 2
        rho = min(1.0, 3.0 * bounds.oblivious_direct_rate_upper_bound(n, k))
        algo = KClique(n, k)
        adversary = LeastOnPairAdversary(
            rho, 1.0, algo.oblivious_schedule(), horizon=algo.num_pairs
        )
        result = run_simulation(KClique(n, k), adversary, 10000)
        assert not result.stable


class TestEnergyLatencyTradeoffShape:
    """More energy (larger k) buys lower latency for the oblivious algorithms."""

    @pytest.mark.slow
    def test_k_cycle_latency_improves_with_k(self):
        n, beta = 13, 1.0
        latencies = {}
        for k in (3, 6):
            rho = 0.4 * bounds.k_cycle_rate_threshold(n, k)
            result = run_simulation(
                KCycle(n, k), SingleSourceSprayAdversary(rho, beta), 12000
            )
            latencies[k] = result.latency
        assert latencies[6] <= latencies[3] * 1.5
