"""Integration tests: oblivious-schedule consistency and trace replay fairness."""

import pytest

from repro.adversary import (
    RecordingAdversary,
    ReplayAdversary,
    UniformRandomAdversary,
)
from repro.algorithms import KClique, KCycle, KSubsets, Orchestra
from repro.protocols import RoundRobinWithholding
from repro.sim import run_simulation


class TestObliviousScheduleConsistency:
    """Energy-oblivious controllers must wake exactly per their published schedule."""

    @pytest.mark.parametrize(
        "factory",
        [lambda: KCycle(9, 3), lambda: KClique(8, 4), lambda: KSubsets(5, 2)],
        ids=["k-cycle", "k-clique", "k-subsets"],
    )
    def test_trace_awake_sets_match_schedule(self, factory):
        algorithm = factory()
        schedule = algorithm.oblivious_schedule()
        result = run_simulation(
            algorithm,
            UniformRandomAdversary(0.05, 1.0, seed=3),
            600,
            record_trace=True,
        )
        for event in result.trace:
            assert set(event.awake) == set(schedule.awake_set(event.round_no)), (
                f"round {event.round_no}: controllers woke {event.awake}, "
                f"schedule says {sorted(schedule.awake_set(event.round_no))}"
            )

    def test_non_oblivious_algorithms_publish_no_schedule(self):
        assert Orchestra(5).oblivious_schedule() is None


class TestReplayFairness:
    """Identical recorded traffic lets two algorithms be compared apples-to-apples."""

    def test_recorded_trace_replays_identically(self):
        inner = UniformRandomAdversary(0.4, 2.0, seed=21)
        recorder = RecordingAdversary(inner)
        first = run_simulation(RoundRobinWithholding(6), recorder, 2000)
        replay = ReplayAdversary(0.4, 2.0, recorder.trace)
        second = run_simulation(RoundRobinWithholding(6), replay, 2000)
        assert first.summary.injected == second.summary.injected
        assert first.summary.delivered == second.summary.delivered
        assert first.summary.max_queue == second.summary.max_queue
        assert first.summary.observed_latency == second.summary.observed_latency

    def test_same_trace_different_algorithms(self):
        inner = UniformRandomAdversary(0.1, 1.0, seed=5)
        recorder = RecordingAdversary(inner)
        run_simulation(KCycle(9, 3), recorder, 3000)
        trace = recorder.trace
        replayed_cycle = run_simulation(
            KCycle(9, 3), ReplayAdversary(0.1, 1.0, trace), 3000
        )
        replayed_rrw = run_simulation(
            RoundRobinWithholding(9), ReplayAdversary(0.1, 1.0, trace), 3000
        )
        assert replayed_cycle.summary.injected == replayed_rrw.summary.injected
        # The uncapped baseline spends much more energy per round.
        assert (
            replayed_rrw.summary.energy_per_round
            > replayed_cycle.summary.energy_per_round
        )
        # But achieves lower latency — the energy/latency trade-off.
        assert replayed_rrw.latency <= replayed_cycle.latency
