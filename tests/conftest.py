"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.channel.feedback import Feedback
from repro.channel.message import Message
from repro.channel.packet import Packet, PacketFactory
from repro.channel.station import StationController


class ScriptedController(StationController):
    """A controller driven by explicit per-round scripts.

    ``awake_rounds`` maps round -> bool (default: awake every round).
    ``transmissions`` maps round -> Message factory or Message.
    Heard feedback, injections and silence are recorded for assertions.
    """

    def __init__(self, station_id: int, n: int, awake_rounds=None, transmissions=None):
        super().__init__(station_id, n)
        self.awake_rounds = awake_rounds
        self.transmissions = dict(transmissions or {})
        self.heard: list[tuple[int, Message]] = []
        self.feedback_log: list[Feedback] = []
        self.injected: list[Packet] = []

    def wakes(self, round_no: int) -> bool:
        if self.awake_rounds is None:
            return True
        if callable(self.awake_rounds):
            return bool(self.awake_rounds(round_no))
        return bool(self.awake_rounds.get(round_no, False))

    def act(self, round_no: int):
        entry = self.transmissions.get(round_no)
        if entry is None:
            return None
        if callable(entry):
            entry = entry(round_no)
        return entry

    def on_feedback(self, round_no: int, feedback: Feedback) -> None:
        self.feedback_log.append(feedback)
        if feedback.heard and feedback.message is not None:
            self.heard.append((round_no, feedback.message))

    def on_inject(self, round_no: int, packet: Packet) -> None:
        self.injected.append(packet)

    def queued_packets(self) -> int:
        return len(self.injected)


@pytest.fixture
def packet_factory() -> PacketFactory:
    return PacketFactory()


@pytest.fixture
def make_packet(packet_factory):
    """Convenience factory: make_packet(destination, injected_at=0, origin=0)."""

    def _make(destination: int, injected_at: int = 0, origin: int = 0) -> Packet:
        return packet_factory.make(destination, injected_at, origin)

    return _make


@pytest.fixture
def scripted_controller_cls():
    return ScriptedController
