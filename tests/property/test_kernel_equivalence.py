"""Property tests: the fast loops are bit-identical to the reference loop.

The capability-negotiated kernel (`repro.channel.kernel.KernelEngine`)
skips whatever bookkeeping a run's components declare they do not need —
view maintenance for oblivious adversaries, per-station wake-up calls for
schedule-driven controllers, full queue polling for incremental-metrics
controllers.  The compiled round-block backend
(`repro.channel.block.BlockEngine`) goes further and lowers fully
negotiated blocks to a single-transmitter loop, falling back per block to
the kernel when a capability is missing.  None of that may change a
single statistic: the checked reference loop is the oracle, and for any
random :class:`RunSpec` all three engines must produce identical
summaries, energy reports and packet bookkeeping.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import RunSpec, execute_spec


def _algorithm_fragments(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    key = draw(
        st.sampled_from(
            [
                "count-hop",
                "orchestra",
                "adjust-window",
                "k-cycle",
                "k-clique",
                "k-subsets",
                "rrw",
                "mbtf",
            ]
        )
    )
    if key in ("k-cycle", "k-clique", "k-subsets"):
        k = draw(st.integers(min_value=2, max_value=max(2, n - 1)))
        return key, {"n": n, "k": k}
    if key == "adjust-window":
        # Keep the derived initial window (and with it the per-example
        # cost) small; the dedicated window-crossing tests below cover
        # window boundaries and doubling.
        return key, {"n": draw(st.integers(min_value=3, max_value=4))}
    return key, {"n": n}


@st.composite
def run_spec_triple_strategy(draw) -> tuple[RunSpec, RunSpec, RunSpec]:
    """One random configuration, spec'd once per engine."""
    algorithm, algorithm_params = _algorithm_fragments(draw)
    adversary = draw(
        st.sampled_from(
            [
                "single-target",
                "spray",
                "round-robin",
                "alternating-pair",
                "bursty",
                "saturating",
                "random",
                "hotspot",
                "adaptive-starvation",
            ]
        )
    )
    params = {
        "rho": draw(
            st.floats(min_value=0.05, max_value=0.9, allow_nan=False).map(
                lambda x: round(x, 3)
            )
        ),
        "beta": float(draw(st.integers(min_value=1, max_value=3))),
    }
    if adversary in ("random", "hotspot"):
        params["seed"] = draw(st.integers(min_value=0, max_value=2**31))
    rounds = draw(st.integers(min_value=20, max_value=300))
    common = dict(
        algorithm=algorithm,
        algorithm_params=algorithm_params,
        adversary=adversary,
        adversary_params=params,
        rounds=rounds,
        enforce_energy_cap=False,
    )
    return (
        RunSpec(engine="block", **common),
        RunSpec(engine="kernel", **common),
        RunSpec(engine="reference", **common),
    )


@given(triple=run_spec_triple_strategy())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fast_engines_match_reference_summaries(triple):
    block_spec, kernel_spec, reference_spec = triple
    block = execute_spec(block_spec)
    kernel = execute_spec(kernel_spec)
    reference = execute_spec(reference_spec)

    for fast in (block, kernel):
        assert fast.summary.as_dict() == reference.summary.as_dict()
        assert fast.energy.rounds == reference.energy.rounds
        assert fast.energy.total_station_rounds == reference.energy.total_station_rounds
        assert fast.energy.max_awake == reference.energy.max_awake
        # Fine-grained collector state, not just the condensed summary.
        kc, rc = fast.collector, reference.collector
        assert kc.total_queue_series == rc.total_queue_series
        assert kc.per_station_max_queue == rc.per_station_max_queue
        assert kc.energy_series == rc.energy_series
        assert kc.outcome_counts == rc.outcome_counts
        assert kc.delays == rc.delays
        assert sorted(kc.records) == sorted(rc.records)


@pytest.mark.parametrize("engine", ["kernel", "block"])
@pytest.mark.parametrize(
    "algorithm, algorithm_params, rounds",
    [
        # Crosses the first Adjust-Window boundary (initial_window=4096)
        # and reaches the second window, exercising the shared clock's
        # window transition, doubling decision and plan rebuilds on the
        # kernel's ticked tier.
        ("adjust-window", {"n": 3, "initial_window": 4096}, 9000),
        # Several full Count-Hop phases and Orchestra baton rotations.
        ("count-hop", {"n": 5}, 2000),
        ("orchestra", {"n": 5}, 2000),
        # 40 k-Subsets phases (gamma = C(6,3) = 20): the shared phase
        # clock's ticked tier must reassign packets at every boundary
        # exactly as the legacy stateful per-station wakes() did.
        ("k-subsets", {"n": 6, "k": 3}, 800),
    ],
)
def test_ticked_algorithms_match_reference_across_stage_boundaries(
    algorithm, algorithm_params, rounds, engine
):
    common = dict(
        algorithm=algorithm,
        algorithm_params=algorithm_params,
        adversary="round-robin",
        adversary_params={"rho": 0.4, "beta": 2.0},
        rounds=rounds,
        enforce_energy_cap=False,
    )
    kernel = execute_spec(RunSpec(engine=engine, **common))
    reference = execute_spec(RunSpec(engine="reference", **common))
    assert kernel.summary.as_dict() == reference.summary.as_dict()
    assert (
        kernel.collector.total_queue_series == reference.collector.total_queue_series
    )
    assert kernel.collector.energy_series == reference.collector.energy_series
    assert kernel.collector.delays == reference.collector.delays


@pytest.mark.parametrize("engine", ["kernel", "block"])
@pytest.mark.parametrize("plan_chunk", [1, 7, 64, 4096])
@pytest.mark.parametrize(
    "adversary, adversary_params",
    [
        ("spray", {"rho": 0.3, "beta": 2.0}),
        ("bursty", {"rho": 0.4, "beta": 4.0}),
        ("random", {"rho": 0.5, "beta": 2.0, "seed": 13}),
    ],
)
def test_planned_injection_chunk_boundaries_match_reference(
    adversary, adversary_params, plan_chunk, engine
):
    """Batched-injection runs are bit-identical to the reference loop for
    every chunking granularity, including degenerate one-round plans and
    chunks that straddle the horizon."""
    common = dict(
        algorithm="k-cycle",
        algorithm_params={"n": 8, "k": 3},
        adversary=adversary,
        adversary_params=adversary_params,
        rounds=333,
        enforce_energy_cap=False,
    )
    kernel = execute_spec(
        RunSpec(engine=engine, plan_chunk=plan_chunk, **common)
    )
    reference = execute_spec(RunSpec(engine="reference", **common))
    assert kernel.summary.as_dict() == reference.summary.as_dict()
    kc, rc = kernel.collector, reference.collector
    assert kc.total_queue_series == rc.total_queue_series
    assert kc.energy_series == rc.energy_series
    assert kc.delays == rc.delays
    assert sorted(kc.records) == sorted(rc.records)


@pytest.mark.parametrize("engine", ["kernel", "block"])
@pytest.mark.parametrize("plan_chunk", [1, 13, 4096])
def test_batched_windowed_view_chunk_boundaries_match_reference(plan_chunk, engine):
    """The schedule-backed view path (windowed adversary on the static
    schedule tier) is bit-identical to the reference loop at every ring
    flush cadence.  The block engine cannot compile these runs (the
    adversary does not plan injections), so its rows pin the per-block
    kernel fallback."""
    common = dict(
        algorithm="k-cycle",
        algorithm_params={"n": 12, "k": 4},
        adversary="adaptive-starvation",
        adversary_params={"rho": 0.3, "beta": 2.0},
        rounds=400,
        enforce_energy_cap=False,
    )
    kernel = execute_spec(
        RunSpec(engine=engine, plan_chunk=plan_chunk, **common)
    )
    reference = execute_spec(RunSpec(engine="reference", **common))
    assert kernel.summary.as_dict() == reference.summary.as_dict()
    kc, rc = kernel.collector, reference.collector
    assert kc.total_queue_series == rc.total_queue_series
    assert kc.delays == rc.delays
    assert sorted(kc.records) == sorted(rc.records)


@pytest.mark.parametrize("engine", ["kernel", "block"])
def test_fast_engines_reject_trace_recording(engine):
    spec = RunSpec(
        algorithm="k-cycle",
        algorithm_params={"n": 5, "k": 2},
        adversary="spray",
        adversary_params={"rho": 0.2, "beta": 1.0},
        rounds=10,
        record_trace=True,
        engine=engine,
    )
    with pytest.raises(ValueError, match="does not record traces"):
        execute_spec(spec)


def test_auto_engine_with_trace_uses_reference():
    spec = RunSpec(
        algorithm="k-cycle",
        algorithm_params={"n": 5, "k": 2},
        adversary="spray",
        adversary_params={"rho": 0.2, "beta": 1.0},
        rounds=25,
        record_trace=True,
    )
    result = execute_spec(spec)
    assert result.trace is not None
    assert len(result.trace) == 25
