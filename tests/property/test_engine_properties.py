"""Property-based tests of the channel engine's physics.

Random scripted wake/transmit patterns must always satisfy the model of
Section 2: a message is heard iff exactly one station transmits, a packet
is delivered iff it is heard while its destination is awake, energy equals
the number of awake stations, and the collector's exactly-once accounting
never trips.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import NoInjectionAdversary
from repro.channel.engine import EngineConfig, RoundEngine
from repro.channel.feedback import ChannelOutcome
from repro.channel.message import Message
from repro.channel.packet import Packet
from repro.channel.station import StationController
from repro.metrics.collector import MetricsCollector


class _RandomScriptController(StationController):
    """Wakes and transmits according to a pre-drawn random script.

    Transmitted packets are registered with the collector at creation so
    that the engine's delivery bookkeeping (which requires every delivered
    packet to have been injected) stays consistent.
    """

    def __init__(self, station_id, n, awake_script, transmit_script, collector):
        super().__init__(station_id, n)
        self.awake_script = awake_script
        self.transmit_script = transmit_script
        self.collector = collector
        self.next_packet_id = station_id * 10_000

    def wakes(self, round_no):
        return self.awake_script[round_no]

    def act(self, round_no):
        dest = self.transmit_script[round_no]
        if dest is None:
            return None
        packet = Packet(
            destination=dest,
            injected_at=round_no,
            origin=self.station_id,
            packet_id=self.next_packet_id,
        )
        self.next_packet_id += 1
        self.collector.record_injection(packet, round_no)
        return Message(sender=self.station_id, packet=packet)

    def on_feedback(self, round_no, feedback):
        pass

    def on_inject(self, round_no, packet):
        pass

    def queued_packets(self):
        return 0


@st.composite
def scripts(draw):
    n = draw(st.integers(2, 5))
    rounds = draw(st.integers(1, 40))
    awake = [
        [draw(st.booleans()) for _ in range(rounds)] for _ in range(n)
    ]
    transmit = []
    for station in range(n):
        row = []
        for t in range(rounds):
            if awake[station][t] and draw(st.booleans()):
                row.append(draw(st.integers(0, n - 1)))
            else:
                row.append(None)
        transmit.append(row)
    return n, rounds, awake, transmit


@given(script=scripts())
@settings(max_examples=100, deadline=None)
def test_channel_physics_invariants(script):
    n, rounds, awake, transmit = script
    collector = MetricsCollector()
    controllers = [
        _RandomScriptController(i, n, awake[i], transmit[i], collector)
        for i in range(n)
    ]
    engine = RoundEngine(
        controllers,
        NoInjectionAdversary().bind(n),
        collector,
        EngineConfig(record_trace=True),
    )
    for t in range(rounds):
        event = engine.step()
        awake_expected = {i for i in range(n) if awake[i][t]}
        transmitters_expected = {
            i for i in awake_expected if transmit[i][t] is not None
        }
        # Energy equals the number of awake stations.
        assert set(event.awake) == awake_expected
        assert event.energy == len(awake_expected)
        # Arbitration follows the 0/1/many rule.
        if len(transmitters_expected) == 0:
            assert event.outcome is ChannelOutcome.SILENCE
        elif len(transmitters_expected) == 1:
            assert event.outcome is ChannelOutcome.HEARD
            assert event.message is not None
            assert event.message.sender in transmitters_expected
        else:
            assert event.outcome is ChannelOutcome.COLLISION
            assert event.message is None
        # Delivery requires a heard packet whose destination is awake.
        if event.delivered_packet is not None:
            assert event.outcome is ChannelOutcome.HEARD
            assert event.delivered_packet.destination in awake_expected
        elif event.outcome is ChannelOutcome.HEARD and event.message.packet is not None:
            assert event.message.packet.destination not in awake_expected
