"""Property-based tests for oblivious schedules, token replicas and stability."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import KClique, KCycle, KSubsets
from repro.channel.feedback import ChannelOutcome
from repro.core.schedule import PeriodicSchedule
from repro.metrics.stability import assess_stability
from repro.protocols.token_ring import TokenRingReplica


@st.composite
def periodic_schedules(draw):
    n = draw(st.integers(2, 6))
    period = draw(st.integers(1, 12))
    sets = [
        draw(st.lists(st.integers(0, n - 1), max_size=n, unique=True))
        for _ in range(period)
    ]
    return PeriodicSchedule(n, sets)


@given(schedule=periodic_schedules(), horizon=st.integers(1, 60))
@settings(max_examples=100, deadline=None)
def test_on_fractions_bounded_and_consistent(schedule, horizon):
    total = 0.0
    for station in range(schedule.n):
        fraction = schedule.on_fraction(station, horizon)
        assert 0.0 <= fraction <= 1.0
        total += fraction
    # Sum of per-station on-fractions equals the average awake-set size.
    mean_awake = np.mean([len(schedule.awake_set(t)) for t in range(horizon)])
    assert abs(total - mean_awake) < 1e-9


@given(schedule=periodic_schedules(), horizon=st.integers(1, 40))
@settings(max_examples=100, deadline=None)
def test_pair_fraction_never_exceeds_individual_fractions(schedule, horizon):
    for a in range(schedule.n):
        for b in range(schedule.n):
            if a == b:
                continue
            pair = schedule.pair_on_fraction(a, b, horizon)
            assert pair <= schedule.on_fraction(a, horizon) + 1e-12
            assert pair <= schedule.on_fraction(b, horizon) + 1e-12


@given(
    n=st.integers(5, 10),
    k=st.integers(2, 4),
)
@settings(max_examples=40, deadline=None)
def test_oblivious_algorithm_schedules_respect_cap(n, k):
    """Published schedules of the oblivious algorithms never exceed their cap."""
    if k >= n:
        return
    for algo in (KCycle(n, k), KClique(n, k)):
        schedule = algo.oblivious_schedule()
        assert schedule.max_awake(schedule.period_length) <= algo.energy_cap
    if __import__("math").comb(n, k) <= 400:
        algo = KSubsets(n, k)
        schedule = algo.oblivious_schedule()
        assert schedule.max_awake(schedule.period_length) <= algo.energy_cap == k


@given(
    members=st.lists(st.integers(0, 20), min_size=1, max_size=8, unique=True),
    outcomes=st.lists(st.sampled_from([ChannelOutcome.SILENCE, ChannelOutcome.HEARD]),
                      max_size=100),
)
@settings(max_examples=120, deadline=None)
def test_token_replicas_with_identical_feedback_agree(members, outcomes):
    """Any two replicas fed the same outcome sequence agree on holder and phase."""
    a, b = TokenRingReplica(list(members)), TokenRingReplica(list(members))
    silences = 0
    for outcome in outcomes:
        a.observe(outcome)
        b.observe(outcome)
        if outcome is ChannelOutcome.SILENCE:
            silences += 1
        assert a.holder == b.holder
        assert a.phase_no == b.phase_no
    # Phase count equals the number of completed token cycles.
    assert a.phase_no == silences // len(members)


@given(
    level=st.integers(0, 500),
    noise=st.integers(0, 10),
    length=st.integers(64, 400),
)
@settings(max_examples=80, deadline=None)
def test_bounded_series_always_classified_stable(level, noise, length):
    rng = np.random.default_rng(0)
    series = level + rng.integers(0, noise + 1, size=length)
    assert assess_stability(series).stable


@given(slope=st.floats(0.5, 5.0), length=st.integers(100, 400))
@settings(max_examples=60, deadline=None)
def test_linearly_growing_series_always_classified_unstable(slope, length):
    series = slope * np.arange(length)
    assert not assess_stability(series).stable
