"""Property tests: parallel execution is bit-identical to the serial path.

The whole point of the spec-based orchestration layer is that a run is a
pure function of its :class:`~repro.sim.specs.RunSpec` — so fanning a
batch out over spawn-started worker processes must return exactly the
summaries the serial fallback computes, for *any* batch.  Hypothesis
generates random batches over the algorithm/adversary registries
(including the seeded stochastic adversaries, whose RNGs are reconstructed
from their spec'd seeds inside each worker).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import ParallelExecutor, RunSpec, execute_spec, run_specs

pytestmark = pytest.mark.parallel


def _algorithm_fragments(draw):
    n = draw(st.integers(min_value=3, max_value=6))
    key = draw(st.sampled_from(["count-hop", "orchestra", "k-cycle", "k-subsets"]))
    if key in ("k-cycle", "k-subsets"):
        k = draw(st.integers(min_value=2, max_value=max(2, n - 1)))
        return key, {"n": n, "k": k}
    return key, {"n": n}


@st.composite
def run_spec_strategy(draw) -> RunSpec:
    algorithm, algorithm_params = _algorithm_fragments(draw)
    adversary = draw(
        st.sampled_from(
            ["single-target", "spray", "round-robin", "bursty", "saturating", "random"]
        )
    )
    params = {
        "rho": draw(
            st.floats(min_value=0.05, max_value=0.9, allow_nan=False).map(
                lambda x: round(x, 3)
            )
        ),
        "beta": float(draw(st.integers(min_value=1, max_value=3))),
    }
    if adversary == "random":
        params["seed"] = draw(st.integers(min_value=0, max_value=2**31))
    return RunSpec(
        algorithm=algorithm,
        algorithm_params=algorithm_params,
        adversary=adversary,
        adversary_params=params,
        rounds=draw(st.integers(min_value=20, max_value=250)),
        enforce_energy_cap=False,
    )


@pytest.fixture(scope="module")
def pool():
    """One shared 2-worker spawn pool for the whole module (startup is slow)."""
    with ParallelExecutor(workers=2) as executor:
        yield executor


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
)
@given(specs=st.lists(run_spec_strategy(), min_size=1, max_size=4))
def test_parallel_summaries_equal_serial(pool, specs):
    serial = [execute_spec(spec) for spec in specs]
    parallel = pool.run(specs)
    assert [r.summary for r in parallel] == [r.summary for r in serial]
    assert [r.energy for r in parallel] == [r.energy for r in serial]


def test_run_specs_order_preserved(pool):
    specs = [
        RunSpec(
            algorithm="count-hop",
            algorithm_params={"n": 4},
            adversary="single-target",
            adversary_params={"rho": rho, "beta": 1.0},
            rounds=150,
        )
        for rho in (0.1, 0.3, 0.5, 0.7)
    ]
    results = pool.run(specs)
    assert [r.summary.label for r in results] == [
        execute_spec(spec).summary.label for spec in specs
    ]
    # Latency grows with the injection rate, so order mix-ups would show.
    serial = [execute_spec(spec) for spec in specs]
    assert [r.latency for r in results] == [r.latency for r in serial]


def test_stochastic_seeds_reproduce_across_processes(pool):
    spec = RunSpec(
        algorithm="orchestra",
        algorithm_params={"n": 4},
        adversary="random",
        adversary_params={"rho": 0.6, "beta": 2.0, "seed": 1234},
        rounds=300,
    )
    a, b = pool.run([spec, spec])
    assert a.summary == b.summary == execute_spec(spec).summary


def test_worker_exception_propagates(pool):
    good = RunSpec(
        algorithm="count-hop",
        algorithm_params={"n": 4},
        adversary="spray",
        adversary_params={"rho": 0.2, "beta": 1.0},
        rounds=100,
    )
    bad = RunSpec(
        algorithm="count-hop",
        algorithm_params={"n": 4},
        adversary="single-target",
        # destination == n is out of range: the worker must raise, and the
        # executor must surface that error rather than hang or swallow it.
        adversary_params={"rho": 0.2, "beta": 1.0, "source": 3, "destination": 4},
        rounds=100,
    )
    with pytest.raises(ValueError):
        pool.run([good, bad, good])


def test_serial_fallback_needs_no_pool():
    spec = RunSpec(
        algorithm="count-hop",
        algorithm_params={"n": 4},
        adversary="spray",
        adversary_params={"rho": 0.3, "beta": 1.0},
        rounds=100,
    )
    with ParallelExecutor(workers=1) as executor:
        results = executor.run([spec, spec])
        assert executor._pool is None  # the serial fallback never spawns
    assert results[0].summary == results[1].summary == execute_spec(spec).summary


def test_run_specs_convenience_wrapper():
    spec = RunSpec(
        algorithm="orchestra",
        algorithm_params={"n": 4},
        adversary="round-robin",
        adversary_params={"rho": 0.4, "beta": 1.0},
        rounds=120,
    )
    (result,) = run_specs([spec])
    assert result.summary == execute_spec(spec).summary
