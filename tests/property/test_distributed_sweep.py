"""Property tests: the distributed sweep service ≡ a serial fault-free sweep.

The headline contract of the distributed layer extends the fault-tolerance
discipline across process boundaries: a localhost topology — HTTP server,
multiple worker processes, a shared filesystem queue and cache — with
fault-injected worker kills (hard ``os._exit`` mid-shard) and forced
lease expiries must produce results *bit-identical* to a serial,
fault-free sweep.  Reclaimed (stolen) shards resume the global fault-coin
stream via their takeover count, so retry budgets are never re-burned,
and poison specs quarantine as structured ``FailedResult`` records.

The CI fault-injection leg sets ``REPRO_FAULT_SEED`` to vary the
schedule across runs; locally the default seed keeps runs reproducible.
The dev box has 1 CPU, so these tests prove correctness by equivalence,
not wall-clock speedup.
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.metrics.summary import RunSummary
from repro.sim import (
    ExecutionPolicy,
    FailedResult,
    FaultPlan,
    ResultCache,
    RunSpec,
    SweepService,
    WorkQueue,
    execute_spec,
    make_server,
    process_lease,
    run_worker,
    shard_index,
    spec_fragment,
    sweep,
)
from repro.sim.service import fetch_results, submit_batch, wait_for_job
from repro.sim.worker import WorkerStats

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "20190622"))
DEFAULT_SEED = 20190622

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _specs(count=8, rounds=300):
    return [
        RunSpec.from_fragments(
            spec_fragment("k-cycle", n=4, k=2),
            spec_fragment("spray", rho=round(0.1 + 0.05 * i, 3), beta=1.5),
            rounds,
            label=f"d{i}",
        )
        for i in range(count)
    ]


def _poison_spec(rounds=300):
    """Deterministically failing spec: out-of-range destination station."""
    return RunSpec.from_fragments(
        spec_fragment("count-hop", n=4),
        spec_fragment("single-target", rho=0.3, beta=1.0, source=3, destination=99),
        rounds,
        label="poison",
    )


def _baseline(specs):
    return {s.spec_hash(): execute_spec(s).summary for s in specs}


def _spawn_worker(queue_dir: Path, *, extra=()) -> subprocess.Popen:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--queue-dir", str(queue_dir),
            "--poll", "0.05",
            "--exit-when-drained",
            "--wait-for-queue", "10",
            *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@pytest.mark.parallel
@pytest.mark.slow
class TestLocalhostTopology:
    def test_faulted_multiprocess_topology_matches_serial_fault_free(self, tmp_path):
        """Server + 2 workers under kill and lease-death injection ≡ serial.

        Worker kills are real crashes (``os._exit`` mid-shard, observed
        as exit status 86), abandoned leases expire and are stolen, and
        the poison spec quarantines — while every healthy spec's result
        is bit-identical to the serial fault-free baseline.
        """
        specs = _specs(8)
        poison = _poison_spec()
        baseline = _baseline(specs)

        service = SweepService(
            tmp_path / "queue",
            tmp_path / "cache",
            lease_ttl=1.0,
            shard_size=2,
            fallback_after=30.0,  # workers do the work; no local fallback
            poll=0.05,
        )
        server = make_server(service, "127.0.0.1", 0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        fault_flags = (
            "--fault-seed", str(FAULT_SEED),
            "--fault-kill-rate", "0.4",
            "--fault-lease-rate", "0.4",
            "--fault-budget", "1",
            "--max-retries", "2",
        )
        workers = [
            _spawn_worker(tmp_path / "queue", extra=fault_flags) for _ in range(2)
        ]
        kills = 0
        try:
            job = submit_batch(
                base, [s.to_dict() for s in specs + [poison]], shard_size=2
            )
            deadline = time.monotonic() + 240
            while time.monotonic() < deadline:
                # Keep two workers alive: injected kills take whole
                # processes down (the crash-recovery under test), so the
                # harness plays the role of a fleet supervisor.
                for i, proc in enumerate(workers):
                    status = proc.poll()
                    if status is not None:
                        if status == 86:
                            kills += 1
                        workers[i] = _spawn_worker(
                            tmp_path / "queue", extra=fault_flags
                        )
                snap = json.loads(
                    urllib.request.urlopen(
                        f"{base}/api/jobs/{job['job']}", timeout=10
                    ).read()
                )
                if snap["complete"]:
                    break
                time.sleep(0.2)
            else:
                pytest.fail("distributed job did not complete in time")
            results = fetch_results(base, job["job"])
        finally:
            for proc in workers:
                proc.terminate()
            for proc in workers:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
            service.close()
            server.shutdown()
            server.server_close()

        assert snap["served_locally"] == 0  # the workers did everything
        by_hash = {r["spec_hash"]: r for r in results}
        for spec in specs:
            record = by_hash[spec.spec_hash()]
            assert record["status"] == "done", record
            assert RunSummary(**record["summary"]) == baseline[spec.spec_hash()]
        poisoned = by_hash[poison.spec_hash()]
        assert poisoned["status"] == "failed"
        assert poisoned["error_type"] == "ValueError"
        # max_retries=2 bounds the attempt count wherever the poison
        # shard landed — stolen shards resume, they don't re-burn budget.
        assert poisoned["attempts"] <= 3
        if FAULT_SEED == DEFAULT_SEED:
            # The default schedule provably kills workers mid-shard; a
            # CI-varied seed may legitimately draw a quiet schedule.
            assert kills >= 1

    def test_server_falls_back_to_local_execution_without_workers(self, tmp_path):
        specs = _specs(5)
        baseline = _baseline(specs)
        service = SweepService(
            tmp_path / "queue",
            tmp_path / "cache",
            shard_size=2,
            fallback_after=0.2,
            poll=0.05,
        )
        try:
            job = service.submit([s.to_dict() for s in specs])
            assert service.wait(job, timeout=120)
            assert job.served_locally > 0
            results = service.results(job)
            for spec, record in zip(specs, results):
                assert record["status"] == "done"
                assert RunSummary(**record["summary"]) == baseline[spec.spec_hash()]
        finally:
            service.close()


class TestLeaseRecovery:
    def test_single_worker_survives_its_own_lease_deaths(self, tmp_path):
        """A lone worker that keeps abandoning leases still finishes.

        ``lease_death_rate=1.0`` with ``fault_budget=1`` abandons every
        shard on its first claim; the worker then steals its own expired
        lease (takeover 1 exhausts the budget, so the second attempt is
        clean) and completes the sweep.
        """
        specs = _specs(4)
        baseline = _baseline(specs)
        queue = WorkQueue(
            tmp_path / "queue", lease_ttl=0.1, cache_dir=tmp_path / "cache"
        )
        queue.enqueue(specs, shard_size=2)
        plan = FaultPlan(seed=FAULT_SEED, lease_death_rate=1.0, fault_budget=1)
        stats = run_worker(
            tmp_path / "queue",
            fault_plan=plan,
            poll=0.05,
            exit_when_drained=True,
        )
        assert stats.lease_deaths == 2  # every shard died once
        assert stats.shards_completed == 2
        assert queue.drained()
        cache = ResultCache(tmp_path / "cache")
        for spec in specs:
            hit = cache.get(spec)
            assert hit is not None
            assert hit.summary == baseline[spec.spec_hash()]

    def test_stolen_shard_resumes_budget_and_cache_hits(self, tmp_path):
        """The thief of an expired lease finishes without re-burning budget.

        The dead owner's kill coin fired on effective attempt 0; the
        thief executes under ``with_offset(takeovers=1)``, which is past
        ``fault_budget=1``, so no coin can fire again — and the spec the
        owner already finished comes back as a cache hit.
        """
        specs = _specs(2)
        cache = ResultCache(tmp_path / "cache")
        queue = WorkQueue(
            tmp_path / "queue", lease_ttl=0.05, cache_dir=tmp_path / "cache"
        )
        queue.enqueue(specs, shard_size=2)
        victim = queue.claim("victim")
        # The victim "finished" one spec before dying mid-shard.
        cache.put(specs[0], execute_spec(specs[0]))
        time.sleep(0.1)  # lease expires un-heartbeaten

        plan = FaultPlan(seed=FAULT_SEED, kill_rate=1.0, fault_budget=1)
        thief_cache = ResultCache(tmp_path / "cache")
        lease = queue.claim("thief")
        assert lease is not None and lease.takeovers == 1
        stats = WorkerStats()
        outcome = process_lease(
            lease,
            thief_cache,
            ExecutionPolicy(max_retries=0),  # any re-burned coin would quarantine
            fault_plan=plan,
            stats=stats,
        )
        assert outcome == "completed"
        assert stats.specs_failed == 0
        assert thief_cache.hits >= 1  # the victim's finished spec was reused
        assert victim.lost or not victim.path.exists()
        assert queue.drained()


class TestShardedSweepUnion:
    def test_sharded_union_is_exactly_the_unsharded_sweep(self, tmp_path):
        algo = lambda rho: spec_fragment("k-cycle", n=4, k=2)  # noqa: E731
        adv = lambda rho: spec_fragment("spray", rho=rho, beta=1.5)  # noqa: E731
        rates = [round(0.1 + 0.1 * i, 2) for i in range(7)]
        full = sweep("union", "rho", rates, algo, adv, 300)

        k = 3
        shard_points: dict[float, object] = {}
        sizes = []
        for index in range(k):
            part = sweep(
                "union", "rho", rates, algo, adv, 300, shard=(index, k)
            )
            sizes.append(len(part.points))
            for point in part.points:
                assert point.value not in shard_points  # disjoint
                shard_points[point.value] = point

        assert sum(sizes) == len(full.points)  # exhaustive
        for point in full.points:
            twin = shard_points[point.value]
            assert twin.result.summary == point.result.summary  # bit-identical

    def test_shard_assignment_matches_shard_index(self):
        algo = lambda rho: spec_fragment("k-cycle", n=4, k=2)  # noqa: E731
        adv = lambda rho: spec_fragment("spray", rho=rho, beta=1.5)  # noqa: E731
        rates = [0.1, 0.2, 0.3, 0.4]
        specs = [
            RunSpec.from_fragments(
                algo(r), adv(r), 300, label=f"union[rho={r}]"
            )
            for r in rates
        ]
        part = sweep("union", "rho", rates, algo, adv, 300, shard=(0, 2))
        expected = [
            r
            for r, s in zip(rates, specs)
            if shard_index(s.spec_hash(), 2) == 0
        ]
        assert part.values() == expected

    def test_sharding_requires_fragments(self):
        from repro.sim.specs import materialize_algorithm, make_adversary

        def algo(rho):
            return materialize_algorithm(spec_fragment("k-cycle", n=4, k=2))

        with pytest.raises(ValueError, match="declarative factories"):
            sweep(
                "live", "rho", [0.2],
                algo,
                lambda rho: make_adversary("spray", rho=rho, beta=1.5),
                200,
                shard=(0, 2),
            )
