"""Property-based end-to-end tests: system invariants under random traffic.

For randomly drawn (small) systems, adversary types and seeds, short runs
of each algorithm must preserve the global invariants of the model:

* the engine-enforced energy cap is never exceeded (the run completes),
* delivered + queued packets account for every injection (no packet is
  lost or duplicated),
* every recorded delay is non-negative and no packet is delivered before
  it was injected.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import UniformRandomAdversary
from repro.algorithms import CountHop, KClique, KCycle, Orchestra
from repro.channel.feedback import ChannelOutcome
from repro.protocols import MoveBigToFront
from repro.sim import run_simulation


def _total_queued(result):
    return result.collector.total_queue_series[-1]


ALGORITHM_BUILDERS = [
    lambda n, k: Orchestra(n),
    lambda n, k: CountHop(n),
    lambda n, k: KCycle(n, k),
    lambda n, k: KClique(n, k),
    lambda n, k: MoveBigToFront(n),
]


@given(
    builder_index=st.integers(0, len(ALGORITHM_BUILDERS) - 1),
    n=st.integers(4, 8),
    k=st.integers(2, 3),
    rho=st.floats(0.05, 0.5),
    beta=st.floats(1.0, 3.0),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_packet_conservation_and_causality(builder_index, n, k, rho, beta, seed):
    algorithm = ALGORITHM_BUILDERS[builder_index](n, k)
    adversary = UniformRandomAdversary(rho, beta, seed=seed)
    result = run_simulation(algorithm, adversary, 600)

    collector = result.collector
    # Conservation: every injected packet is either delivered or still queued
    # at some station (never lost, never duplicated).
    assert collector.delivered_count + _total_queued(result) == collector.injected_count
    assert len(collector.undelivered_packets()) == collector.pending_count
    # Causality: delays are non-negative and bounded by the run length.
    assert all(0 <= d <= result.rounds for d in collector.delays)
    # Energy: the recorded maximum respects the algorithm's declared cap
    # (the engine would have raised otherwise).
    assert result.summary.max_energy <= algorithm.energy_cap


@given(
    n=st.integers(4, 7),
    rho=st.floats(0.05, 0.4),
    seed=st.integers(0, 50),
)
@settings(max_examples=20, deadline=None)
def test_trace_outcomes_are_collision_free_for_token_protocols(n, rho, seed):
    """The withholding protocols never cause collisions: only one station may transmit."""
    adversary = UniformRandomAdversary(rho, 2.0, seed=seed)
    result = run_simulation(MoveBigToFront(n), adversary, 400, record_trace=True)
    assert all(e.outcome is not ChannelOutcome.COLLISION for e in result.trace)


@given(
    n=st.integers(4, 7),
    k=st.integers(2, 3),
    rho=st.floats(0.05, 0.3),
    seed=st.integers(0, 50),
)
@settings(max_examples=20, deadline=None)
def test_paper_algorithms_never_collide(n, k, rho, seed):
    """All six paper algorithms coordinate transmissions without collisions."""
    adversary = UniformRandomAdversary(rho, 2.0, seed=seed)
    for builder in (lambda: Orchestra(n), lambda: CountHop(n), lambda: KCycle(n, k)):
        result = run_simulation(builder(), adversary, 300, record_trace=True)
        assert all(e.outcome is not ChannelOutcome.COLLISION for e in result.trace)
        adversary = UniformRandomAdversary(rho, 2.0, seed=seed + 1)
