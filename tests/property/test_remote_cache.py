"""Property tests: the no-shared-filesystem topology ≡ a serial sweep.

The remote-cache topology removes the last shared-filesystem assumption
from the distributed layer: workers reach the queue *and* the cache over
HTTP alone (``repro worker --server URL``), every RPC goes through the
resilient client (timeouts, deterministic retry/backoff, circuit
breaker, checksummed bodies), and when the server is unreachable the
cache backend degrades to a local spill directory that is reconciled
once the circuit closes.

The headline property extends the fault-tolerance contract across the
*network* fault domain: a localhost topology — HTTP server, two worker
processes with **no shared directories at all** — under injected
network faults (connection refusals, HTTP 500s, torn and corrupted
responses on both sides) and hard worker kills must produce results
bit-identical to a serial, fault-free sweep, and the default schedule
must provably exercise the spill → reconcile path at least once.

The CI leg sets ``REPRO_FAULT_SEED`` to vary the schedule across runs;
locally the default seed keeps runs reproducible (schedule-specific
assertions are gated on it).
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.metrics.summary import RunSummary
from repro.sim import (
    FaultPlan,
    RunSpec,
    SweepService,
    execute_spec,
    make_server,
    run_worker,
    spec_fragment,
)
from repro.sim.netclient import RpcPolicy
from repro.sim.service import fetch_results, submit_batch

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "20190622"))
DEFAULT_SEED = 20190622

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _specs(count=8, rounds=300):
    return [
        RunSpec.from_fragments(
            spec_fragment("k-cycle", n=4, k=2),
            spec_fragment("spray", rho=round(0.1 + 0.05 * i, 3), beta=1.5),
            rounds,
            label=f"r{i}",
        )
        for i in range(count)
    ]


def _baseline(specs):
    return {s.spec_hash(): execute_spec(s).summary for s in specs}


def _spawn_remote_worker(base_url: str, spill_dir: Path, *, extra=()) -> subprocess.Popen:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--server", base_url,
            "--spill-dir", str(spill_dir),
            "--poll", "0.05",
            "--exit-when-drained",
            "--wait-for-queue", "10",
            *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@pytest.mark.parallel
@pytest.mark.slow
class TestRemoteCacheTopology:
    def test_networked_topology_with_faults_matches_serial_fault_free(self, tmp_path):
        """Server + 2 no-shared-filesystem workers under network faults ≡ serial.

        The workers mount *nothing*: shards are claimed over
        ``POST /api/queue/claim`` and results land over
        ``PUT /api/cache/<hash>``.  Network faults are injected on both
        sides (client coins refuse/500, server coins tear and corrupt
        real responses), worker kills are real crashes (``os._exit``
        mid-shard), and the fault budget is sized so some stores exhaust
        their retries — forcing the spill → reconcile degradation path —
        yet every result is bit-identical to the serial baseline.
        """
        specs = _specs(8)
        baseline = _baseline(specs)

        service = SweepService(
            tmp_path / "queue",
            tmp_path / "server-cache",
            lease_ttl=1.0,
            shard_size=2,
            fallback_after=60.0,  # workers do the work; no local fallback
            poll=0.05,
            fault_plan=FaultPlan(
                seed=FAULT_SEED,
                net_torn_rate=0.1,
                net_corrupt_rate=0.05,
                fault_budget=2,
            ),
        )
        server = make_server(service, "127.0.0.1", 0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        fault_flags = (
            "--fault-seed", str(FAULT_SEED),
            "--fault-kill-rate", "0.3",
            "--fault-net-refuse-rate", "0.35",
            "--fault-net-error-rate", "0.1",
            "--fault-budget", "2",
            # max_attempts <= fault_budget lets a store exhaust its
            # retries, which is exactly what forces a spill.
            "--rpc-max-attempts", "2",
            "--rpc-breaker-threshold", "2",
            "--rpc-breaker-reset", "0.2",
        )
        workers = [
            _spawn_remote_worker(base, tmp_path / f"spill{i}", extra=fault_flags)
            for i in range(2)
        ]
        kills = 0
        try:
            job = submit_batch(base, [s.to_dict() for s in specs], shard_size=2)
            deadline = time.monotonic() + 240
            while time.monotonic() < deadline:
                # Keep two workers alive: injected kills take whole
                # processes down, so the harness plays fleet supervisor.
                for i, proc in enumerate(workers):
                    status = proc.poll()
                    if status is not None:
                        if status == 86:
                            kills += 1
                        workers[i] = _spawn_remote_worker(
                            base, tmp_path / f"spill{i}", extra=fault_flags
                        )
                snap = json.loads(
                    urllib.request.urlopen(
                        f"{base}/api/jobs/{job['job']}", timeout=10
                    ).read()
                )
                if snap["complete"]:
                    break
                time.sleep(0.2)
            else:
                pytest.fail("remote-cache job did not complete in time")
            results = fetch_results(base, job["job"])
        finally:
            for proc in workers:
                proc.terminate()
            for proc in workers:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
            service.close()
            server.shutdown()
            server.server_close()

        assert snap["served_locally"] == 0  # the workers did everything
        by_hash = {r["spec_hash"]: r for r in results}
        for spec in specs:
            record = by_hash[spec.spec_hash()]
            assert record["status"] == "done", record
            assert RunSummary(**record["summary"]) == baseline[spec.spec_hash()]

        # The workers' RPC health rides on their lease-complete records
        # and is aggregated onto the job snapshot.
        rpc = snap["rpc"]
        assert rpc.get("requests", 0) > 0
        if FAULT_SEED == DEFAULT_SEED:
            # The default schedule provably exercises the degradation
            # path: at least one store exhausted its retries into the
            # spill cache and was later reconciled to the server.  A
            # CI-varied seed may legitimately draw a quieter schedule.
            assert rpc.get("retries", 0) >= 1
            assert rpc.get("spilled", 0) >= 1
            assert rpc.get("reconciled", 0) >= 1
            assert kills >= 1  # and the kill schedule crashed a worker
        # Whatever was spilled was reconciled or re-derived: nothing the
        # server published refers to bytes only a worker holds.
        assert rpc.get("spill_pending", 0) == 0

    def test_in_process_remote_worker_equivalence_without_faults(self, tmp_path):
        """A clean in-process remote worker reproduces the serial baseline."""
        specs = _specs(4)
        baseline = _baseline(specs)
        service = SweepService(
            tmp_path / "queue",
            tmp_path / "server-cache",
            lease_ttl=5.0,
            shard_size=2,
            fallback_after=60.0,
            poll=0.05,
        )
        server = make_server(service, "127.0.0.1", 0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            job = service.submit([s.to_dict() for s in specs], shard_size=2)
            stats = run_worker(
                server_url=base,
                spill_dir=tmp_path / "spill",
                rpc_policy=RpcPolicy(timeout=5.0),
                exit_when_drained=True,
                wait_for_queue=5.0,
                poll=0.05,
            )
            assert service.wait(job, timeout=60)
            results = service.results(job)
        finally:
            service.close()
            server.shutdown()
            server.server_close()

        assert stats.specs_done == len(specs)
        assert stats.spilled == 0 and stats.reconciled == 0
        by_hash = {r["spec_hash"]: r for r in results}
        for spec in specs:
            record = by_hash[spec.spec_hash()]
            assert record["status"] == "done"
            assert RunSummary(**record["summary"]) == baseline[spec.spec_hash()]
