"""Property tests for the compiled round-block backend.

:class:`~repro.channel.block.BlockEngine` lowers fully negotiated round
blocks — static-schedule or ticked tier, silence-invariant controllers,
planned injections, heard-only polling — to a single-transmitter compiled
loop driven by the run's shared :class:`RoundBlockDriver`.  The contract
pinned here:

* every block-capable algorithm produces bit-identical collector and
  energy state to both the kernel and the checked reference loop;
* anything short of full capability degrades gracefully — whole-run
  fallback for ineligible components, per-block fallback when the driver
  declines a block — and still matches the reference bit for bit;
* resolution (``auto`` → block) and the negotiation report are stable
  introspection surfaces.
"""

import pytest

from repro.channel.block import BlockEngine
from repro.channel.engine import EngineConfig
from repro.channel.kernel import KernelEngine
from repro.channel.packet import PacketFactory
from repro.core.registry import make_algorithm
from repro.metrics.collector import MetricsCollector
from repro.sim import RunSpec, execute_spec
from repro.sim.runner import resolve_engine
from repro.sim.specs import make_adversary

#: Algorithms whose build_controllers attaches a shared block driver.
BLOCK_CAPABLE = ["k-cycle", "k-clique", "k-subsets", "rrw", "of-rrw", "mbtf"]

#: Algorithms without a block driver: whole-run kernel fallback.
BLOCK_HOLDOUTS = [
    ("count-hop", {"n": 6}),
    ("orchestra", {"n": 6}),
    ("adjust-window", {"n": 4}),
]


def _collector_state(collector: MetricsCollector) -> tuple:
    return (
        collector.total_queue_series,
        collector.per_station_max_queue,
        collector.energy_series,
        collector.outcome_counts,
        collector.delays,
        collector.rounds_observed,
        collector.injected_count,
        collector.delivered_count,
        sorted(collector.records),
    )


def _params_for(algorithm: str, n: int = 8) -> dict:
    params = {"n": n}
    if algorithm in ("k-cycle", "k-clique", "k-subsets"):
        params["k"] = 3
    return params


def _build_engine(common, engine_cls, plan_chunk=64):
    algorithm = make_algorithm(common["algorithm"], **common["algorithm_params"])
    adversary = make_adversary(common["adversary"], **common["adversary_params"])
    adversary.bind(algorithm.n, PacketFactory())
    return engine_cls(
        algorithm.build_controllers(),
        adversary,
        config=EngineConfig(enforce_energy_cap=False, plan_chunk=plan_chunk),
        schedule=algorithm.oblivious_schedule(),
    )


@pytest.mark.parametrize("algorithm", BLOCK_CAPABLE)
@pytest.mark.parametrize(
    "adversary, adversary_params",
    [
        ("random", {"rho": 0.35, "beta": 2.0, "seed": 17}),
        ("bursty", {"rho": 0.2, "beta": 4.0, "idle_rounds": 19}),
        ("saturating", {"rho": 1.0, "beta": 2.0}),
    ],
)
def test_block_capable_algorithms_match_kernel_and_reference(
    algorithm, adversary, adversary_params
):
    common = dict(
        algorithm=algorithm,
        algorithm_params=_params_for(algorithm),
        adversary=adversary,
        adversary_params=adversary_params,
        rounds=400,
        enforce_energy_cap=False,
        plan_chunk=97,
    )
    block = execute_spec(RunSpec(engine="block", **common))
    kernel = execute_spec(RunSpec(engine="kernel", **common))
    common.pop("plan_chunk")
    reference = execute_spec(RunSpec(engine="reference", **common))

    assert block.negotiation["block_compilation"], algorithm
    assert block.negotiation["blocks_compiled"] > 0
    assert block.negotiation["blocks_fallback"] == 0
    for fast in (block, kernel):
        assert fast.summary.as_dict() == reference.summary.as_dict()
        assert _collector_state(fast.collector) == _collector_state(
            reference.collector
        )
        assert fast.energy.total_station_rounds == reference.energy.total_station_rounds
        assert fast.energy.max_awake == reference.energy.max_awake


@pytest.mark.parametrize("algorithm, params", BLOCK_HOLDOUTS)
def test_holdout_algorithms_fall_back_whole_run(algorithm, params):
    common = dict(
        algorithm=algorithm,
        algorithm_params=params,
        adversary="round-robin",
        adversary_params={"rho": 0.4, "beta": 2.0},
        rounds=300,
        enforce_energy_cap=False,
    )
    block = execute_spec(RunSpec(engine="block", **common))
    reference = execute_spec(RunSpec(engine="reference", **common))
    assert not block.negotiation["block_compilation"], algorithm
    assert block.negotiation["blocks_compiled"] == 0
    assert block.negotiation["blocks_fallback"] > 0
    assert block.summary.as_dict() == reference.summary.as_dict()
    assert _collector_state(block.collector) == _collector_state(reference.collector)


def test_unplanned_adversary_falls_back_whole_run():
    """adaptive-starvation reads the channel, so no injection plan — the
    block engine must degrade to the kernel loop without compiling."""
    common = dict(
        algorithm="k-cycle",
        algorithm_params={"n": 8, "k": 3},
        adversary="adaptive-starvation",
        adversary_params={"rho": 0.3, "beta": 2.0},
        rounds=300,
        enforce_energy_cap=False,
    )
    block = execute_spec(RunSpec(engine="block", **common))
    reference = execute_spec(RunSpec(engine="reference", **common))
    assert not block.negotiation["block_compilation"]
    assert block.negotiation["blocks_compiled"] == 0
    assert block.summary.as_dict() == reference.summary.as_dict()
    assert _collector_state(block.collector) == _collector_state(reference.collector)


COMMON = dict(
    algorithm="k-cycle",
    algorithm_params={"n": 8, "k": 3},
    adversary="random",
    adversary_params={"rho": 0.3, "beta": 2.0, "seed": 29},
)


def test_mixed_eligible_and_declined_blocks_match_reference():
    """A driver may decline any individual block (begin_block → False);
    declined blocks run through the kernel loop and the mix must still be
    bit-identical.  Decline every other block to interleave the paths."""
    engine = _build_engine(COMMON, BlockEngine, plan_chunk=50)
    assert engine.uses_block_compilation

    driver = engine.controllers[0].block_driver
    original = driver.begin_block
    calls = {"count": 0}

    def alternating(start, stop):
        calls["count"] += 1
        if calls["count"] % 2 == 0:
            return False
        return original(start, stop)

    driver.begin_block = alternating
    engine.run(500)
    assert engine.blocks_compiled > 0
    assert engine.blocks_fallback > 0

    reference = execute_spec(
        RunSpec(engine="reference", rounds=500, enforce_energy_cap=False, **COMMON)
    )
    assert _collector_state(engine.collector) == _collector_state(
        reference.collector
    )
    report = engine.energy.report()
    assert report.total_station_rounds == reference.energy.total_station_rounds
    assert report.max_awake == reference.energy.max_awake
    assert report.rounds == reference.energy.rounds


def test_mid_run_decline_switchover_matches_reference():
    """Compile for a while, then the driver starts declining: the mid-run
    switchover (canonical state written back, kernel loop resumes from
    member state) must leave no seam."""
    engine = _build_engine(COMMON, BlockEngine, plan_chunk=25)
    driver = engine.controllers[0].block_driver
    original = driver.begin_block

    def decline_after_round_200(start, stop):
        if start >= 200:
            return False
        return original(start, stop)

    driver.begin_block = decline_after_round_200
    engine.run(450)
    assert engine.blocks_compiled > 0
    assert engine.blocks_fallback > 0

    reference = execute_spec(
        RunSpec(engine="reference", rounds=450, enforce_energy_cap=False, **COMMON)
    )
    assert _collector_state(engine.collector) == _collector_state(
        reference.collector
    )


@pytest.mark.parametrize("splits", [(123, 377), (1, 499), (250, 249, 1)])
def test_segmented_block_runs_match_single_run(splits):
    """run() may be called repeatedly; segment boundaries land mid-chunk
    and mid-activity-segment and must not disturb the compiled state."""
    segmented = _build_engine(COMMON, BlockEngine, plan_chunk=64)
    for piece in splits:
        segmented.run(piece)
    single = _build_engine(COMMON, BlockEngine, plan_chunk=64)
    single.run(sum(splits))
    assert _collector_state(segmented.collector) == _collector_state(
        single.collector
    )
    assert segmented.energy.report() == single.energy.report()


def test_auto_prefers_block_and_trace_forces_reference():
    assert resolve_engine("auto", record_trace=False) == "block"
    assert resolve_engine("auto", record_trace=True) == "reference"
    assert resolve_engine("kernel", record_trace=False) == "kernel"
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("compiled", record_trace=False)


def test_run_result_reports_engine_and_negotiation():
    result = execute_spec(
        RunSpec(rounds=60, enforce_energy_cap=False, **COMMON)
    )
    assert result.engine_used == "block"
    neg = result.negotiation
    assert neg["engine"] == "BlockEngine"
    for key in (
        "schedule_fast_path",
        "planned_injections",
        "quiescence_skipping",
        "block_compilation",
        "blocks_compiled",
        "blocks_fallback",
    ):
        assert key in neg
    reference = execute_spec(
        RunSpec(engine="reference", rounds=60, enforce_energy_cap=False, **COMMON)
    )
    assert reference.engine_used == "reference"
    assert reference.negotiation is None


def test_block_engine_requires_shared_driver():
    """Controllers with per-station (non-shared) drivers must not
    negotiate block compilation — the driver is one object for the run."""
    engine = _build_engine(COMMON, BlockEngine)
    assert engine.uses_block_compilation
    # Simulate a buggy algorithm attaching distinct drivers.
    algorithm = make_algorithm("k-cycle", n=8, k=3)
    adversary = make_adversary("random", rho=0.3, beta=2.0, seed=29)
    adversary.bind(algorithm.n, PacketFactory())
    controllers = algorithm.build_controllers()
    import copy

    controllers[1].block_driver = copy.copy(controllers[1].block_driver)
    engine = BlockEngine(
        controllers,
        adversary,
        config=EngineConfig(enforce_energy_cap=False),
        schedule=algorithm.oblivious_schedule(),
    )
    assert not engine.uses_block_compilation
    engine.run(50)  # still runs, via the kernel loop
    assert engine.blocks_compiled == 0


# ---------------------------------------------------------------------------
# Batch awake-matrix export and the optional numba probe
# ---------------------------------------------------------------------------


def test_schedule_awake_matrix_tiles_the_period():
    import numpy as np

    schedule = make_algorithm("k-clique", n=8, k=4).oblivious_schedule()
    period = schedule.periodic_awake_sets()
    matrix = schedule.awake_matrix(0, len(period))
    assert matrix.shape == (len(period), 8)
    assert matrix.dtype == np.bool_
    for t, awake in enumerate(period):
        assert set(np.flatnonzero(matrix[t]).tolist()) == set(awake)
    # Arbitrary windows tile modulo the period.
    window = schedule.awake_matrix(5, 5 + 3 * len(period))
    for row in range(window.shape[0]):
        assert (window[row] == matrix[(5 + row) % len(period)]).all()
    with pytest.raises(ValueError):
        schedule.awake_matrix(10, 5)


def test_accel_probe_degrades_cleanly_without_numba():
    """With numba absent the probe must be a silent no-op: the decorator
    returns the function unchanged and the offsets scan falls back to
    numpy.  (A numba-installed CI leg exercises the jitted branch.)"""
    import numpy as np

    from repro import _accel

    @_accel.maybe_jit
    def plain(x):
        return x + 1

    @_accel.maybe_jit(cache=True)
    def with_kwargs(x):
        return x * 2

    assert plain(1) == 2
    assert with_kwargs(3) == 6
    if not _accel.HAVE_NUMBA:
        assert plain.__name__ == "plain"

    offsets = np.array([0, 0, 2, 2, 3, 3], dtype=np.int64)
    assert _accel.injection_round_indices(offsets).tolist() == [1, 3]
    empty = np.array([0], dtype=np.int64)
    assert _accel.injection_round_indices(empty).tolist() == []
