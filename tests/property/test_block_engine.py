"""Property tests for the compiled round-block backend.

:class:`~repro.channel.block.BlockEngine` lowers fully negotiated round
blocks — static-schedule or ticked tier, silence-invariant controllers,
planned injections, heard-only polling — to a single-transmitter compiled
loop driven by the run's shared :class:`RoundBlockDriver`.  The contract
pinned here:

* every block-capable algorithm produces bit-identical collector and
  energy state to both the kernel and the checked reference loop;
* anything short of full capability degrades gracefully — whole-run
  fallback for ineligible components, per-block fallback when the driver
  declines a block — and still matches the reference bit for bit;
* resolution (``auto`` → block) and the negotiation report are stable
  introspection surfaces.
"""

import pytest

from repro.channel.block import BlockEngine
from repro.channel.engine import EngineConfig
from repro.channel.kernel import KernelEngine
from repro.channel.packet import PacketFactory
from repro.core.registry import make_algorithm
from repro.metrics.collector import MetricsCollector
from repro.sim import RunSpec, execute_spec
from repro.sim.runner import resolve_engine
from repro.sim.specs import make_adversary

#: Algorithms whose build_controllers attaches a shared block driver.
BLOCK_CAPABLE = ["k-cycle", "k-clique", "k-subsets", "rrw", "of-rrw", "mbtf"]

#: Beaconing algorithms with *restricted* drivers: they waive the
#: silence invariant, compile their deterministic phases and decline the
#: adaptive ones per block (Count-Hop's Report substage).
BLOCK_RESTRICTED = [
    ("count-hop", {"n": 6}),
    ("orchestra", {"n": 6}),
]

#: Algorithms without a block driver: whole-run kernel fallback.
BLOCK_HOLDOUTS = [
    ("adjust-window", {"n": 4}),
]


def _collector_state(collector: MetricsCollector) -> tuple:
    return (
        collector.total_queue_series,
        collector.per_station_max_queue,
        collector.energy_series,
        collector.outcome_counts,
        collector.delays,
        collector.rounds_observed,
        collector.injected_count,
        collector.delivered_count,
        sorted(collector.records),
    )


def _params_for(algorithm: str, n: int = 8) -> dict:
    params = {"n": n}
    if algorithm in ("k-cycle", "k-clique", "k-subsets"):
        params["k"] = 3
    return params


def _build_engine(common, engine_cls, plan_chunk=64):
    algorithm = make_algorithm(common["algorithm"], **common["algorithm_params"])
    adversary = make_adversary(common["adversary"], **common["adversary_params"])
    adversary.bind(algorithm.n, PacketFactory())
    return engine_cls(
        algorithm.build_controllers(),
        adversary,
        config=EngineConfig(enforce_energy_cap=False, plan_chunk=plan_chunk),
        schedule=algorithm.oblivious_schedule(),
    )


@pytest.mark.parametrize("algorithm", BLOCK_CAPABLE)
@pytest.mark.parametrize(
    "adversary, adversary_params",
    [
        ("random", {"rho": 0.35, "beta": 2.0, "seed": 17}),
        ("bursty", {"rho": 0.2, "beta": 4.0, "idle_rounds": 19}),
        ("saturating", {"rho": 1.0, "beta": 2.0}),
    ],
)
def test_block_capable_algorithms_match_kernel_and_reference(
    algorithm, adversary, adversary_params
):
    common = dict(
        algorithm=algorithm,
        algorithm_params=_params_for(algorithm),
        adversary=adversary,
        adversary_params=adversary_params,
        rounds=400,
        enforce_energy_cap=False,
        plan_chunk=97,
    )
    block = execute_spec(RunSpec(engine="block", **common))
    kernel = execute_spec(RunSpec(engine="kernel", **common))
    common.pop("plan_chunk")
    reference = execute_spec(RunSpec(engine="reference", **common))

    assert block.negotiation["block_compilation"], algorithm
    assert block.negotiation["blocks_compiled"] > 0
    assert block.negotiation["blocks_fallback"] == 0
    for fast in (block, kernel):
        assert fast.summary.as_dict() == reference.summary.as_dict()
        assert _collector_state(fast.collector) == _collector_state(
            reference.collector
        )
        assert fast.energy.total_station_rounds == reference.energy.total_station_rounds
        assert fast.energy.max_awake == reference.energy.max_awake


@pytest.mark.parametrize("algorithm, params", BLOCK_RESTRICTED)
@pytest.mark.parametrize(
    "adversary, adversary_params",
    [
        ("round-robin", {"rho": 0.4, "beta": 2.0}),
        ("random", {"rho": 0.35, "beta": 2.0, "seed": 23}),
        ("bursty", {"rho": 0.3, "beta": 6.0, "idle_rounds": 37}),
    ],
)
def test_restricted_drivers_match_kernel_and_reference(
    algorithm, params, adversary, adversary_params
):
    """Count-Hop and Orchestra compile their deterministic phases via
    restricted drivers (silence invariant waived, acts unconditional);
    the mix of compiled and declined blocks crosses their stage/season
    boundaries and must stay bit-identical to the other engines."""
    common = dict(
        algorithm=algorithm,
        algorithm_params=params,
        adversary=adversary,
        adversary_params=adversary_params,
        rounds=600,
        enforce_energy_cap=False,
        plan_chunk=97,
    )
    block = execute_spec(RunSpec(engine="block", **common))
    kernel = execute_spec(RunSpec(engine="kernel", **common))
    common.pop("plan_chunk")
    reference = execute_spec(RunSpec(engine="reference", **common))

    neg = block.negotiation
    assert neg["block_compilation"], algorithm
    assert neg["blocks_compiled"] > 0
    if algorithm == "count-hop":
        # The adaptive Report substage is declined per block, with the
        # reason string surfaced through the negotiation report.
        assert neg["blocks_fallback"] > 0
        assert any(
            "Report substage" in reason for reason in neg["block_decline_reasons"]
        )
    else:
        # Orchestra has no adaptive phase: every block compiles.
        assert neg["blocks_fallback"] == 0
        assert neg["block_decline_reasons"] == {}
    for fast in (block, kernel):
        assert fast.summary.as_dict() == reference.summary.as_dict()
        assert _collector_state(fast.collector) == _collector_state(
            reference.collector
        )
        assert fast.energy.total_station_rounds == reference.energy.total_station_rounds
        assert fast.energy.max_awake == reference.energy.max_awake


@pytest.mark.parametrize("algorithm, params", BLOCK_HOLDOUTS)
def test_holdout_algorithms_fall_back_whole_run(algorithm, params):
    common = dict(
        algorithm=algorithm,
        algorithm_params=params,
        adversary="round-robin",
        adversary_params={"rho": 0.4, "beta": 2.0},
        rounds=300,
        enforce_energy_cap=False,
    )
    block = execute_spec(RunSpec(engine="block", **common))
    reference = execute_spec(RunSpec(engine="reference", **common))
    assert not block.negotiation["block_compilation"], algorithm
    assert block.negotiation["blocks_compiled"] == 0
    assert block.negotiation["blocks_fallback"] > 0
    assert block.summary.as_dict() == reference.summary.as_dict()
    assert _collector_state(block.collector) == _collector_state(reference.collector)


def test_unplanned_adversary_falls_back_whole_run():
    """adaptive-starvation reads the channel, so no injection plan — the
    block engine must degrade to the kernel loop without compiling."""
    common = dict(
        algorithm="k-cycle",
        algorithm_params={"n": 8, "k": 3},
        adversary="adaptive-starvation",
        adversary_params={"rho": 0.3, "beta": 2.0},
        rounds=300,
        enforce_energy_cap=False,
    )
    block = execute_spec(RunSpec(engine="block", **common))
    reference = execute_spec(RunSpec(engine="reference", **common))
    assert not block.negotiation["block_compilation"]
    assert block.negotiation["blocks_compiled"] == 0
    assert block.summary.as_dict() == reference.summary.as_dict()
    assert _collector_state(block.collector) == _collector_state(reference.collector)


COMMON = dict(
    algorithm="k-cycle",
    algorithm_params={"n": 8, "k": 3},
    adversary="random",
    adversary_params={"rho": 0.3, "beta": 2.0, "seed": 29},
)


def test_mixed_eligible_and_declined_blocks_match_reference():
    """A driver may decline any individual block (begin_block → False);
    declined blocks run through the kernel loop and the mix must still be
    bit-identical.  Decline every other block to interleave the paths."""
    engine = _build_engine(COMMON, BlockEngine, plan_chunk=50)
    assert engine.uses_block_compilation

    driver = engine.controllers[0].block_driver
    original = driver.begin_block
    calls = {"count": 0}

    def alternating(start, stop):
        calls["count"] += 1
        if calls["count"] % 2 == 0:
            return False
        return original(start, stop)

    driver.begin_block = alternating
    engine.run(500)
    assert engine.blocks_compiled > 0
    assert engine.blocks_fallback > 0

    reference = execute_spec(
        RunSpec(engine="reference", rounds=500, enforce_energy_cap=False, **COMMON)
    )
    assert _collector_state(engine.collector) == _collector_state(
        reference.collector
    )
    report = engine.energy.report()
    assert report.total_station_rounds == reference.energy.total_station_rounds
    assert report.max_awake == reference.energy.max_awake
    assert report.rounds == reference.energy.rounds


def test_mid_run_decline_switchover_matches_reference():
    """Compile for a while, then the driver starts declining: the mid-run
    switchover (canonical state written back, kernel loop resumes from
    member state) must leave no seam."""
    engine = _build_engine(COMMON, BlockEngine, plan_chunk=25)
    driver = engine.controllers[0].block_driver
    original = driver.begin_block

    def decline_after_round_200(start, stop):
        if start >= 200:
            return False
        return original(start, stop)

    driver.begin_block = decline_after_round_200
    engine.run(450)
    assert engine.blocks_compiled > 0
    assert engine.blocks_fallback > 0

    reference = execute_spec(
        RunSpec(engine="reference", rounds=450, enforce_energy_cap=False, **COMMON)
    )
    assert _collector_state(engine.collector) == _collector_state(
        reference.collector
    )


@pytest.mark.parametrize("splits", [(123, 377), (1, 499), (250, 249, 1)])
def test_segmented_block_runs_match_single_run(splits):
    """run() may be called repeatedly; segment boundaries land mid-chunk
    and mid-activity-segment and must not disturb the compiled state."""
    segmented = _build_engine(COMMON, BlockEngine, plan_chunk=64)
    for piece in splits:
        segmented.run(piece)
    single = _build_engine(COMMON, BlockEngine, plan_chunk=64)
    single.run(sum(splits))
    assert _collector_state(segmented.collector) == _collector_state(
        single.collector
    )
    assert segmented.energy.report() == single.energy.report()


def test_auto_prefers_block_and_trace_forces_reference():
    assert resolve_engine("auto", record_trace=False) == "block"
    assert resolve_engine("auto", record_trace=True) == "reference"
    assert resolve_engine("kernel", record_trace=False) == "kernel"
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("compiled", record_trace=False)


def test_run_result_reports_engine_and_negotiation():
    result = execute_spec(
        RunSpec(rounds=60, enforce_energy_cap=False, **COMMON)
    )
    assert result.engine_used == "block"
    neg = result.negotiation
    assert neg["engine"] == "BlockEngine"
    for key in (
        "schedule_fast_path",
        "planned_injections",
        "quiescence_skipping",
        "block_compilation",
        "blocks_compiled",
        "blocks_fallback",
    ):
        assert key in neg
    reference = execute_spec(
        RunSpec(engine="reference", rounds=60, enforce_energy_cap=False, **COMMON)
    )
    assert reference.engine_used == "reference"
    assert reference.negotiation is None


def test_block_engine_requires_shared_driver():
    """Controllers with per-station (non-shared) drivers must not
    negotiate block compilation — the driver is one object for the run."""
    engine = _build_engine(COMMON, BlockEngine)
    assert engine.uses_block_compilation
    # Simulate a buggy algorithm attaching distinct drivers.
    algorithm = make_algorithm("k-cycle", n=8, k=3)
    adversary = make_adversary("random", rho=0.3, beta=2.0, seed=29)
    adversary.bind(algorithm.n, PacketFactory())
    controllers = algorithm.build_controllers()
    import copy

    controllers[1].block_driver = copy.copy(controllers[1].block_driver)
    engine = BlockEngine(
        controllers,
        adversary,
        config=EngineConfig(enforce_energy_cap=False),
        schedule=algorithm.oblivious_schedule(),
    )
    assert not engine.uses_block_compilation
    engine.run(50)  # still runs, via the kernel loop
    assert engine.blocks_compiled == 0


# ---------------------------------------------------------------------------
# Segment lowering: array-lowered spans inside compiled blocks
# ---------------------------------------------------------------------------

#: (algorithm, params, adversary, adversary_params) grids on which the
#: drivers provably lower spans (dense arrival absorption for the
#: token-ring family, silent-span lowering for the schedule-driven
#: family) — each case must produce lowered_rounds > 0, so a regression
#: that silently stops lowering fails loudly here.
LOWERING_CASES = [
    ("rrw", {"n": 16}, "bursty", {"rho": 0.5, "beta": 8.0, "idle_rounds": 200}),
    ("rrw", {"n": 32}, "random", {"rho": 0.9, "beta": 2.0, "seed": 9}),
    ("of-rrw", {"n": 32}, "random", {"rho": 0.9, "beta": 2.0, "seed": 9}),
    ("of-rrw", {"n": 8}, "spray", {"rho": 0.25, "beta": 4.0}),
    ("mbtf", {"n": 32}, "random", {"rho": 0.95, "beta": 2.0, "seed": 9}),
    ("mbtf", {"n": 16}, "bursty", {"rho": 0.6, "beta": 8.0, "idle_rounds": 200}),
    (
        "k-cycle",
        {"n": 16, "k": 4},
        "bursty",
        {"rho": 0.05, "beta": 4.0, "idle_rounds": 150},
    ),
    (
        "k-clique",
        {"n": 16, "k": 6},
        "bursty",
        {"rho": 0.03, "beta": 4.0, "idle_rounds": 150},
    ),
    ("k-subsets", {"n": 8, "k": 3}, "random", {"rho": 0.05, "beta": 2.0, "seed": 9}),
]


def _lowering_common(algorithm, params, adversary, adversary_params):
    return dict(
        algorithm=algorithm,
        algorithm_params=params,
        adversary=adversary,
        adversary_params=adversary_params,
    )


def _build_lowered(common):
    """A block engine accepting every proved segment, however short.

    The correctness tests deliberately exercise the segment-cut edges
    (single-round proofs, cuts right before activity) that the
    perf-oriented default :attr:`~BlockEngine.lower_min_span` would
    discard; pinning the knob to 1 keeps them on the lowered path."""
    engine = _build_engine(common, BlockEngine)
    engine.lower_min_span = 1
    return engine


@pytest.mark.parametrize(
    "algorithm, params, adversary, adversary_params", LOWERING_CASES
)
def test_lowered_segments_match_per_round_blocks_and_reference(
    algorithm, params, adversary, adversary_params
):
    """lowered ≡ block ≡ reference: the array-lowered path must be an
    execution detail, invisible in every collected statistic.  The dense
    cases put injections mid-segment (the lowering absorbs them from the
    plan); the bursty cases interleave quiescent-span elision with
    lowered segments inside the same blocks."""
    common = _lowering_common(algorithm, params, adversary, adversary_params)
    lowered = _build_lowered(common)
    per_round = _build_engine(common, BlockEngine)
    per_round.lowering_enabled = False
    lowered.run(1500)
    per_round.run(1500)
    assert lowered.lowered_segments > 0, (algorithm, adversary)
    assert lowered.lowered_rounds > 0
    assert per_round.lowered_segments == 0
    assert _collector_state(lowered.collector) == _collector_state(
        per_round.collector
    )
    assert lowered.energy.report() == per_round.energy.report()

    reference = execute_spec(
        RunSpec(
            engine="reference", rounds=1500, enforce_energy_cap=False, **common
        )
    )
    assert _collector_state(lowered.collector) == _collector_state(
        reference.collector
    )


def test_lowering_interleaves_with_span_elision():
    """A bursty run alternates quiescent spans (elided) with busy drain
    spans (lowered); both fast paths must engage in the same run."""
    common = _lowering_common(
        "rrw", {"n": 16}, "bursty", {"rho": 0.5, "beta": 8.0, "idle_rounds": 200}
    )
    engine = _build_lowered(common)
    engine.run(2000)
    assert engine.quiescent_rounds_elided > 0
    assert engine.lowered_rounds > 0


def test_dense_lowering_absorbs_mid_segment_injections():
    """At rho ~0.9 nearly every round injects: segments can only exist
    because the driver absorbs planned arrivals, so high coverage here
    proves the mid-segment injection path, not just drain spans."""
    common = _lowering_common(
        "rrw", {"n": 32}, "random", {"rho": 0.9, "beta": 2.0, "seed": 9}
    )
    engine = _build_lowered(common)
    engine.run(1500)
    assert engine.collector.injected_count > 500
    assert engine.lowered_rounds > 1000


@pytest.mark.parametrize("rng_version", [1, 2])
def test_lowered_equivalence_on_both_rng_versions(rng_version):
    """The seeded adversaries' RNG protocol (per-round draws vs batched
    plan-time draws) must not affect lowered-vs-reference equivalence."""
    for algorithm, params in [("rrw", {"n": 16}), ("k-subsets", {"n": 6, "k": 2})]:
        common = _lowering_common(
            algorithm,
            params,
            "random",
            {"rho": 0.4, "beta": 2.0, "seed": 31, "rng_version": rng_version},
        )
        engine = _build_lowered(common)
        engine.run(800)
        reference = execute_spec(
            RunSpec(
                engine="reference", rounds=800, enforce_energy_cap=False, **common
            )
        )
        assert _collector_state(engine.collector) == _collector_state(
            reference.collector
        ), (algorithm, rng_version)


def test_lowering_toggle_is_reported_in_negotiation():
    common = _lowering_common(
        "rrw", {"n": 16}, "random", {"rho": 0.5, "beta": 2.0, "seed": 3}
    )
    engine = _build_engine(common, BlockEngine)
    engine.run(300)
    neg = engine.negotiation()
    assert neg["segment_lowering"] is True
    assert neg["lowered_segments"] == engine.lowered_segments
    assert neg["lowered_rounds"] == engine.lowered_rounds
    off = _build_engine(common, BlockEngine)
    off.lowering_enabled = False
    off.run(300)
    assert off.negotiation()["segment_lowering"] is False
    assert off.negotiation()["lowered_rounds"] == 0


def test_lower_min_span_discards_short_proofs_without_changing_results():
    """The minimum-span knob is a pure execution strategy: a prohibitive
    span discards every proof (segments never engage) and the default
    discards only short ones (mid-block re-probes), yet all three
    settings must collect identical statistics."""
    common = _lowering_common(
        "rrw", {"n": 16}, "bursty", {"rho": 0.5, "beta": 8.0, "idle_rounds": 200}
    )
    eager = _build_lowered(common)
    default = _build_engine(common, BlockEngine)
    picky = _build_engine(common, BlockEngine)
    picky.lower_min_span = 10_000
    for engine in (eager, default, picky):
        engine.run(1500)
    assert eager.lowered_segments > 0
    assert picky.lowered_segments == 0
    state = _collector_state(eager.collector)
    assert _collector_state(default.collector) == state
    assert _collector_state(picky.collector) == state
    assert eager.energy.report() == picky.energy.report()


# ---------------------------------------------------------------------------
# Batch awake-matrix export and the optional numba probe
# ---------------------------------------------------------------------------


def test_schedule_awake_matrix_tiles_the_period():
    import numpy as np

    schedule = make_algorithm("k-clique", n=8, k=4).oblivious_schedule()
    period = schedule.periodic_awake_sets()
    matrix = schedule.awake_matrix(0, len(period))
    assert matrix.shape == (len(period), 8)
    assert matrix.dtype == np.bool_
    for t, awake in enumerate(period):
        assert set(np.flatnonzero(matrix[t]).tolist()) == set(awake)
    # Arbitrary windows tile modulo the period.
    window = schedule.awake_matrix(5, 5 + 3 * len(period))
    for row in range(window.shape[0]):
        assert (window[row] == matrix[(5 + row) % len(period)]).all()
    with pytest.raises(ValueError):
        schedule.awake_matrix(10, 5)


def test_accel_probe_degrades_cleanly_without_numba():
    """With numba absent the probe must be a silent no-op: the decorator
    returns the function unchanged and the offsets scan falls back to
    numpy.  (A numba-installed CI leg exercises the jitted branch.)"""
    import numpy as np

    from repro import _accel

    @_accel.maybe_jit
    def plain(x):
        return x + 1

    @_accel.maybe_jit(cache=True)
    def with_kwargs(x):
        return x * 2

    assert plain(1) == 2
    assert with_kwargs(3) == 6
    if not _accel.HAVE_NUMBA:
        assert plain.__name__ == "plain"

    offsets = np.array([0, 0, 2, 2, 3, 3], dtype=np.int64)
    assert _accel.injection_round_indices(offsets).tolist() == [1, 3]
    empty = np.array([0], dtype=np.int64)
    assert _accel.injection_round_indices(empty).tolist() == []
