"""Property-based tests for the leaky-bucket constraint tracker."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.leaky_bucket import (
    AdversaryType,
    LeakyBucketConstraint,
    verify_injection_record,
)

rates = st.floats(min_value=0.05, max_value=1.0, allow_nan=False, allow_infinity=False)
bursts = st.floats(min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False)


@given(rho=rates, beta=bursts, decisions=st.lists(st.floats(0, 1), min_size=1, max_size=200))
@settings(max_examples=120, deadline=None)
def test_greedy_fractional_consumption_never_violates_envelope(rho, beta, decisions):
    """Consuming any fraction of the online budget always yields a legal record."""
    adversary_type = AdversaryType(rho=rho, beta=beta)
    constraint = LeakyBucketConstraint(adversary_type)
    counts = []
    for fraction in decisions:
        budget = constraint.budget()
        count = int(budget * fraction)
        constraint.consume(count)
        counts.append(count)
    assert verify_injection_record(counts, adversary_type)


@given(rho=rates, beta=bursts, idle=st.integers(0, 50))
@settings(max_examples=60, deadline=None)
def test_budget_never_exceeds_single_round_burstiness(rho, beta, idle):
    """No amount of idling accumulates more than the one-round burstiness."""
    adversary_type = AdversaryType(rho=rho, beta=beta)
    constraint = LeakyBucketConstraint(adversary_type)
    for _ in range(idle):
        constraint.consume(0)
    assert constraint.budget() <= adversary_type.burstiness


@given(rho=rates, beta=bursts, rounds=st.integers(1, 150))
@settings(max_examples=60, deadline=None)
def test_total_injections_bounded_by_window_bound(rho, beta, rounds):
    """A maximally greedy adversary never exceeds rho * t + beta injections."""
    adversary_type = AdversaryType(rho=rho, beta=beta)
    constraint = LeakyBucketConstraint(adversary_type)
    total = 0
    for _ in range(rounds):
        budget = constraint.budget()
        constraint.consume(budget)
        total += budget
    assert total <= adversary_type.window_bound(rounds) + 1e-6


@given(
    rho=rates,
    beta=bursts,
    counts=st.lists(st.integers(0, 3), min_size=1, max_size=60),
)
@settings(max_examples=80, deadline=None)
def test_online_tracker_agrees_with_reference_checker(rho, beta, counts):
    """The O(1) tracker accepts a record iff the O(t^2) reference checker does."""
    adversary_type = AdversaryType(rho=rho, beta=beta)
    constraint = LeakyBucketConstraint(adversary_type)
    online_ok = True
    for count in counts:
        if count > constraint.budget():
            online_ok = False
            break
        constraint.consume(count)
    reference_ok = verify_injection_record(counts, adversary_type, strict=False)
    if online_ok:
        assert reference_ok
    # When the online tracker rejects, the prefix that was accepted is still legal.
