"""Property tests for the tick-split wake protocol.

The four state-machine algorithms (Count-Hop, Orchestra, Adjust-Window,
k-Subsets) now advance their stage/phase structure in a shared
:class:`~repro.core.schedule.WakeOracle`: ``tick(t)`` is the explicit
per-round state transition and ``wakes(t)`` a pure query afterwards.
These tests pin the protocol contract:

* ``tick(t)`` + pure ``wakes(t)`` reproduces the legacy stateful
  ``wakes()`` calling convention round-for-round — re-querying every
  station after the round's first (ticking) pass returns the identical
  awake set, i.e. ``wakes`` has become side-effect-free given the tick;
* the oracle's batch ``awake_stations(t)`` equals the per-station loop
  in every round of a real driven execution (injections, collisions,
  feedback and all);
* the kernel engine negotiates the ticked tier for exactly these
  algorithms.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import (
    RoundRobinAdversary,
    SaturatingAdversary,
    SingleSourceSprayAdversary,
)
from repro.channel.engine import EngineConfig, RoundEngine
from repro.channel.kernel import KernelEngine
from repro.channel.packet import PacketFactory
from repro.core.registry import make_algorithm

ALGORITHMS = [
    ("count-hop", {"n": 5}),
    ("count-hop", {"n": 7}),
    ("orchestra", {"n": 5}),
    ("orchestra", {"n": 8}),
    ("adjust-window", {"n": 3}),
    ("adjust-window", {"n": 4}),
    ("k-subsets", {"n": 5, "k": 2}),
    ("k-subsets", {"n": 6, "k": 3}),
]

ADVERSARIES = {
    "spray": SingleSourceSprayAdversary,
    "round-robin": RoundRobinAdversary,
    "saturating": SaturatingAdversary,
}


def _build(algorithm_key, algorithm_params, adversary_key, rho):
    algorithm = make_algorithm(algorithm_key, **algorithm_params)
    controllers = algorithm.build_controllers()
    adversary = ADVERSARIES[adversary_key](rho, 2.0).bind(
        algorithm.n, PacketFactory()
    )
    return algorithm, controllers, adversary


def _assert_batch_matches_legacy(controllers, adversary, rounds):
    """Drive a full reference execution; in every round the oracle's batch
    awake set and a second pure per-station ``wakes`` pass must equal the
    awake set the engine's legacy (first) per-station pass produced."""
    oracle = controllers[0].wake_oracle
    assert oracle is not None
    assert all(ctrl.wake_oracle is oracle for ctrl in controllers)

    # Probe at wakes-time: the engine calls wakes station by station in
    # step 2 of each round; patching the last station's wakes lets us
    # query the oracle (and re-query every station) after all transitions
    # of the round have run but before any station acts.
    probes = []
    last = controllers[-1]
    legacy_wakes = last.wakes

    def probed_wakes(round_no):
        result = legacy_wakes(round_no)
        # The kernel's calling convention: an explicit (redundant, hence
        # idempotent) tick followed by pure queries.
        controllers[0].tick(round_no)
        oracle.tick(round_no)
        batch = oracle.awake_stations(round_no)
        requery = tuple(
            i
            for i, ctrl in enumerate(controllers)
            if (legacy_wakes if ctrl is last else ctrl.wakes)(round_no)
        )
        probes.append((round_no, batch, requery))
        return result

    last.wakes = probed_wakes
    engine = RoundEngine(
        controllers, adversary, config=EngineConfig(enforce_energy_cap=False)
    )
    for _ in range(rounds):
        event = engine.step()
        round_no, batch, requery = probes[-1]
        assert round_no == event.round_no
        assert batch == event.awake, (
            f"batch awake set diverged in round {round_no}"
        )
        assert requery == event.awake, (
            f"wakes() is not pure after tick in round {round_no}"
        )
    assert len(probes) == rounds


@given(
    config=st.sampled_from(ALGORITHMS),
    adversary_key=st.sampled_from(sorted(ADVERSARIES)),
    rho=st.sampled_from([0.1, 0.5, 0.9]),
    rounds=st.integers(min_value=30, max_value=300),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_batch_awake_set_and_pure_requery_match_legacy_wakes(
    config, adversary_key, rho, rounds
):
    algorithm_key, algorithm_params = config
    _, controllers, adversary = _build(
        algorithm_key, algorithm_params, adversary_key, rho
    )
    _assert_batch_matches_legacy(controllers, adversary, rounds)


@pytest.mark.parametrize(
    "algorithm_params, rounds",
    [
        # Full window (gossip + main + aux) plus the boundary into the
        # second window, including a possible doubling decision.
        ({"n": 3, "initial_window": 4096}, 4200),
        # Gossip completes at round 800; ~200 Main-stage rounds follow.
        ({"n": 4}, 1000),
    ],
)
def test_adjust_window_batch_matches_legacy_in_every_stage(
    algorithm_params, rounds
):
    """Within 300 rounds the hypothesis probe above only ever sees
    Adjust-Window's Gossip stage; these longer deterministic drives cover
    Main, Auxiliary and the window transition round-for-round."""
    _, controllers, adversary = _build(
        "adjust-window", algorithm_params, "round-robin", 0.6
    )
    _assert_batch_matches_legacy(controllers, adversary, rounds)


@pytest.mark.parametrize("algorithm_key, algorithm_params", ALGORITHMS)
def test_kernel_negotiates_ticked_tier(algorithm_key, algorithm_params):
    algorithm, controllers, adversary = _build(
        algorithm_key, algorithm_params, "spray", 0.2
    )
    engine = KernelEngine(
        controllers,
        adversary,
        config=EngineConfig(enforce_energy_cap=False),
        schedule=algorithm.oblivious_schedule(),
    )
    assert engine.uses_ticked_wakes
    assert not engine.uses_schedule_fast_path
    engine.run(150)
    assert engine.collector.rounds_observed == 150


def test_schedule_published_algorithms_use_the_static_tier_instead():
    """k-Cycle declares a static schedule, so the kernel never needs the
    ticked tier for it; with k-Subsets migrated, no algorithm is left on
    the per-station ``wakes()`` fallback."""
    algorithm, controllers, adversary = _build(
        "k-cycle", {"n": 9, "k": 3}, "spray", 0.2
    )
    engine = KernelEngine(
        controllers,
        adversary,
        config=EngineConfig(enforce_energy_cap=False),
        schedule=algorithm.oblivious_schedule(),
    )
    assert not engine.uses_ticked_wakes
    assert engine.uses_schedule_fast_path


@pytest.mark.parametrize(
    "algorithm_params, rounds",
    [
        # gamma = C(5, 2) = 10: many phase boundaries, including several
        # with packets pending reassignment.
        ({"n": 5, "k": 2}, 400),
        # gamma = C(6, 3) = 20 with a larger per-phase thread fan-out.
        ({"n": 6, "k": 3}, 300),
    ],
)
def test_k_subsets_batch_matches_legacy_across_phase_boundaries(
    algorithm_params, rounds
):
    """Deterministic long drives over many k-Subsets phases: the shared
    phase clock's batch awake set and post-tick pure ``wakes`` must equal
    the legacy stateful per-station pass in every round."""
    _, controllers, adversary = _build(
        "k-subsets", algorithm_params, "round-robin", 0.6
    )
    _assert_batch_matches_legacy(controllers, adversary, rounds)
