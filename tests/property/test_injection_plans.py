"""Property tests for the batched adversary pipeline.

Two contracts pinned here, both with the per-round path as the oracle:

* **Batched injection planning** — for every oblivious adversary family,
  ``plan_injections(start, stop)`` must be packet-for-packet identical to
  calling ``inject`` round by round: same (source, destination) pairs in
  the same per-round order, and the same leaky-bucket state afterwards.
  Chunk boundaries are adversarial (hypothesis picks the split points),
  and chunks must compose with per-round injection in either order.

* **Batched windowed-view maintenance** — a
  :class:`~repro.channel.engine.ScheduleBackedView` fed one O(1) update
  per round must agree with a plain :class:`AdversaryView` fed full
  incremental updates, down to per-round view state: last awake set,
  exact per-station on-counts, least-on-station tie-breaks, outcome
  window, queue snapshot, and (after each ring flush) the bounded awake
  history itself.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary import (
    AlternatingPairAdversary,
    BurstThenIdleAdversary,
    GroupLocalAdversary,
    HotspotAdversary,
    LeastOnPairAdversary,
    LeastOnStationAdversary,
    NoInjectionAdversary,
    RandomWalkAdversary,
    ReplayAdversary,
    RoundRobinAdversary,
    SaturatingAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
    UniformRandomAdversary,
)
from repro.channel.engine import AdversaryView, ScheduleBackedView
from repro.channel.feedback import ChannelOutcome
from repro.channel.packet import PacketFactory
from repro.core.registry import make_algorithm

N = 7

# One representative constructor per oblivious family; (rho, beta) are
# filled in by the test.  Schedule-aware families read a published
# periodic schedule; the replay family replays a fixed conforming trace.
_SCHEDULE = make_algorithm("k-cycle", n=N, k=3).oblivious_schedule()
_TRACE_SOURCE = [(t, (t + 1) % N, (t + 3) % N) for t in range(0, 160, 2)]

FAMILIES = {
    "single-target": lambda rho, beta: SingleTargetAdversary(rho, beta),
    "spray": lambda rho, beta: SingleSourceSprayAdversary(rho, beta, source=2),
    # source == n - 1 exercises the cursor wrap in the skip-cycle planner.
    "spray-wrap": lambda rho, beta: SingleSourceSprayAdversary(
        rho, beta, source=N - 1
    ),
    "round-robin": lambda rho, beta: RoundRobinAdversary(rho, beta, offset=3),
    # offset == n makes every raw destination collide with its source,
    # forcing the vectorised clash correction on every injection.
    "round-robin-clash": lambda rho, beta: RoundRobinAdversary(rho, beta, offset=N),
    "alternating-pair": lambda rho, beta: AlternatingPairAdversary(rho, beta),
    "saturating": lambda rho, beta: SaturatingAdversary(1.0, beta, stride=2),
    "bursty": lambda rho, beta: BurstThenIdleAdversary(rho, beta, idle_rounds=3),
    "group-local": lambda rho, beta: GroupLocalAdversary(
        rho, beta, group_start=N - 2, group_size=3
    ),
    "no-injection": lambda rho, beta: NoInjectionAdversary(),
    "random": lambda rho, beta: UniformRandomAdversary(rho, beta, seed=11),
    "hotspot": lambda rho, beta: HotspotAdversary(rho, beta, seed=5),
    "random-walk": lambda rho, beta: RandomWalkAdversary(rho, beta, seed=23),
    # The batched (version-2) RNG protocol: one array draw per block
    # instead of per-round sampling.  Same plan ≡ inject contract — the
    # per-round path slices the identical block cache, so chunks and
    # per-round calls may interleave across block boundaries too.
    "random-v2": lambda rho, beta: UniformRandomAdversary(
        rho, beta, seed=11, rng_version=2
    ),
    "hotspot-v2": lambda rho, beta: HotspotAdversary(
        rho, beta, seed=5, rng_version=2
    ),
    "random-walk-v2": lambda rho, beta: RandomWalkAdversary(
        rho, beta, seed=23, rng_version=2
    ),
    "least-on-station": lambda rho, beta: LeastOnStationAdversary(
        rho, beta, _SCHEDULE, horizon=200
    ),
    "least-on-pair": lambda rho, beta: LeastOnPairAdversary(
        rho, beta, _SCHEDULE, horizon=200
    ),
    "replay": lambda rho, beta: ReplayAdversary(
        max(rho, 0.5), max(beta, 1.0), _make_trace()
    ),
}


def _make_trace():
    from repro.adversary import InjectionTrace

    return InjectionTrace.from_entries(_TRACE_SOURCE)


def _per_round_pairs_via_inject(adversary, rounds):
    view = AdversaryView(n=N, window=0)
    out = []
    for t in range(rounds):
        out.append(
            [(s, p.destination) for s, p in adversary.inject(t, view)]
        )
    return out


def _per_round_pairs_via_plans(adversary, rounds, boundaries):
    out = []
    lo = 0
    for hi in sorted(boundaries) + [rounds]:
        if hi <= lo:
            continue
        plan = adversary.plan_injections(lo, hi)
        plan.validate(N)
        assert (plan.start, plan.stop) == (lo, hi)
        for t in range(lo, hi):
            out.append(plan.pairs_for(t))
        lo = hi
    return out


def _constraint_state(adversary):
    constraint = adversary.constraint
    return (
        constraint.budget(),
        constraint.round_no,
        constraint.total_injected,
        constraint.peek_after_skip(5),
    )


@pytest.mark.slow
@given(
    family=st.sampled_from(sorted(FAMILIES)),
    rho=st.sampled_from([0.07, 0.3, 0.55, 0.9, 1.0]),
    beta=st.sampled_from([0.0, 1.0, 2.5, 4.0]),
    rounds=st.integers(min_value=1, max_value=160),
    boundaries=st.lists(
        st.integers(min_value=0, max_value=160), max_size=6
    ),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_planned_injections_match_per_round_inject(
    family, rho, beta, rounds, boundaries
):
    build = FAMILIES[family]
    reference = build(rho, beta)
    reference.bind(N, PacketFactory())
    planned = build(rho, beta)
    planned.bind(N, PacketFactory())
    assert planned.plans_injections

    expected = _per_round_pairs_via_inject(reference, rounds)
    got = _per_round_pairs_via_plans(
        planned, rounds, [b for b in boundaries if b < rounds]
    )
    assert got == expected
    assert _constraint_state(planned) == _constraint_state(reference)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_plans_compose_with_per_round_injection(family):
    """Chunks and per-round calls interleave without drifting: internal
    cursors, parities and RNG state must carry across the mode switch."""
    build = FAMILIES[family]
    reference = build(0.7, 2.0)
    reference.bind(N, PacketFactory())
    mixed = build(0.7, 2.0)
    mixed.bind(N, PacketFactory())

    expected = _per_round_pairs_via_inject(reference, 120)

    view = AdversaryView(n=N, window=0)
    got = []
    plan = mixed.plan_injections(0, 40)
    got.extend(plan.pairs_for(t) for t in range(40))
    for t in range(40, 75):
        got.append([(s, p.destination) for s, p in mixed.inject(t, view)])
    plan = mixed.plan_injections(75, 120)
    got.extend(plan.pairs_for(t) for t in range(75, 120))

    assert got == expected
    assert _constraint_state(mixed) == _constraint_state(reference)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_plan_array_export_matches_per_round_pairs(family):
    """``as_arrays`` (the compiled block backend's CSR view) and
    ``injection_rounds`` agree with the per-round pair listing."""
    import numpy as np

    adversary = FAMILIES[family](0.6, 2.0)
    adversary.bind(N, PacketFactory())
    start, stop = 5, 133
    plan = adversary.plan_injections(start, stop)
    plan.validate(N)

    offsets, sources, destinations = plan.as_arrays()
    assert offsets.dtype == sources.dtype == destinations.dtype == np.int64
    assert offsets[0] == 0 and offsets[-1] == len(sources)
    expected_rounds = []
    for t in range(start, stop):
        lo, hi = offsets[t - start], offsets[t - start + 1]
        got = list(zip(sources[lo:hi].tolist(), destinations[lo:hi].tolist()))
        assert got == plan.pairs_for(t)
        if got:
            expected_rounds.append(t)
    assert plan.injection_rounds() == expected_rounds
    # Both exports are cached: same objects on repeated calls.
    assert plan.as_arrays() is (offsets, sources, destinations) or plan.as_arrays()[0] is offsets
    assert plan.injection_rounds() is plan.injection_rounds()


def test_plan_cached_exports_raise_after_mutation():
    """The CSR caches are derived from the mutable list fields: a plan
    that is mutated or re-chunked after its first export must raise
    instead of silently serving stale arrays."""
    from repro.adversary import InjectionPlan

    plan = InjectionPlan.from_counts(0, 3, [1, 0, 2], [0, 1, 2], [1, 2, 0])
    plan.as_arrays()
    plan.injection_rounds()

    # Appending pairs (re-chunking in place) invalidates the export.
    plan.sources.append(1)
    plan.destinations.append(0)
    plan.offsets[-1] += 1
    with pytest.raises(RuntimeError, match="mutated after"):
        plan.as_arrays()
    with pytest.raises(RuntimeError, match="mutated after"):
        plan.injection_rounds()

    # Shifting the window is equally structural.
    plan2 = InjectionPlan.from_counts(0, 2, [1, 1], [0, 1], [1, 2])
    plan2.injection_rounds()
    plan2.start += 1
    plan2.stop += 1
    with pytest.raises(RuntimeError, match="mutated after"):
        plan2.injection_rounds()

    # An untouched plan keeps serving its cached views.
    plan3 = InjectionPlan.from_counts(0, 2, [1, 1], [0, 1], [1, 2])
    first = plan3.as_arrays()
    assert plan3.as_arrays() is first
    assert plan3.injection_rounds() == [0, 1]


def test_plan_validate_rejects_malformed_plans():
    from repro.adversary import InjectionPlan

    good = InjectionPlan.from_counts(0, 2, [1, 1], [0, 1], [1, 2])
    good.validate(3)
    with pytest.raises(ValueError, match="outside"):
        InjectionPlan.from_counts(0, 1, [1], [5], [1]).validate(3)
    with pytest.raises(ValueError, match="differ from its source"):
        InjectionPlan.from_counts(0, 1, [1], [2], [2]).validate(3)
    with pytest.raises(ValueError, match="cover the round window"):
        InjectionPlan(0, 3, [0, 1], [0], [1]).validate(3)


# ---------------------------------------------------------------------------
# Batched windowed-view maintenance
# ---------------------------------------------------------------------------

_OUTCOMES = [
    ChannelOutcome.SILENCE,
    ChannelOutcome.HEARD,
    ChannelOutcome.COLLISION,
]


@pytest.mark.slow
@given(
    n=st.integers(min_value=3, max_value=9),
    k=st.integers(min_value=2, max_value=4),
    window=st.sampled_from([1, 3, 16, 1024]),
    rounds=st.integers(min_value=1, max_value=260),
    flush_every=st.integers(min_value=1, max_value=64),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_schedule_backed_view_matches_incremental_view(
    n, k, window, rounds, flush_every
):
    k = min(k, n - 1)
    schedule = make_algorithm("k-cycle", n=n, k=k).oblivious_schedule()
    period = schedule.periodic_awake_sets()
    prefix = schedule.period_on_count_prefix()

    batched = ScheduleBackedView(n, window, period, prefix)
    incremental = AdversaryView(n=n, window=window)

    for t in range(rounds):
        awake = period[t % len(period)]
        outcome = _OUTCOMES[t % 3]
        queue_sizes = [(t + i) % (i + 2) for i in range(n)]
        delivered = t // 2
        incremental.observe_round(awake, outcome, list(queue_sizes), delivered)
        batched.observe_scheduled(outcome, queue_sizes, delivered)

        # Exact-per-round query API.
        assert batched.last_awake() == incremental.last_awake()
        for i in range(n):
            assert batched.station_on_rounds(i) == incremental.station_on_rounds(i)
        assert batched.least_on_station() == incremental.least_on_station()
        assert list(batched.outcome_history) == list(incremental.outcome_history)
        assert list(batched.queue_sizes) == list(incremental.queue_sizes)
        assert batched.delivered_total == incremental.delivered_total

        # Ring flushed at chunk granularity.
        if t % flush_every == flush_every - 1:
            batched.flush_window()
            assert list(batched.awake_history) == list(incremental.awake_history)

    batched.flush_window()
    assert list(batched.awake_history) == list(incremental.awake_history)


def test_least_on_station_tie_break_matches_name_order():
    view = AdversaryView(n=4)
    view.observe_round((1, 2), ChannelOutcome.SILENCE, [0] * 4, 0)
    view.observe_round((2, 3), ChannelOutcome.SILENCE, [0] * 4, 0)
    # Stations 0 has 0 on-rounds; 1 and 3 have one each; 2 has two.
    assert view.least_on_station() == 0
    view.observe_round((0,), ChannelOutcome.SILENCE, [0] * 4, 0)
    # Now 0, 1, 3 all have one on-round: the smallest name wins.
    assert view.least_on_station() == 0


def test_hand_assembled_view_still_supports_least_on_station():
    view = AdversaryView(n=3)
    view.awake_history = [(0, 1), (0, 2), (0, 1)]
    assert view.least_on_station() == 2
