"""Property tests: the quiescent-span fast path changes no statistic.

The kernel engine's fifth negotiation axis elides whole injection-free
spans when every controller declares ``silence_invariant`` and every
queue is empty.  Nothing may change: for any random spec that mixes
quiescent spans with bursts, the span-skipping kernel must match the
reference loop — and the span-free kernel (``quiescence_skip=False``) —
round for round: outcome counts, energy series, queue series, per-station
maxima, delays and packet bookkeeping.  A run aborted mid-span and
resumed must replay its cached plan remainder rather than re-plan.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel.block import BlockEngine
from repro.channel.engine import EngineConfig
from repro.channel.kernel import KernelEngine
from repro.channel.packet import PacketFactory
from repro.metrics.collector import MetricsCollector
from repro.sim import RunSpec, execute_spec
from repro.sim.specs import make_adversary
from repro.core.registry import make_algorithm

#: Every algorithm whose controllers declare the silence invariant; the
#: strategy below must keep this list in sync with the declarations
#: (asserted per example).
SILENCE_CAPABLE = ["k-cycle", "k-clique", "k-subsets", "rrw", "of-rrw", "mbtf"]


def _collector_state(collector: MetricsCollector) -> tuple:
    return (
        collector.total_queue_series,
        collector.per_station_max_queue,
        collector.energy_series,
        collector.outcome_counts,
        collector.delays,
        collector.rounds_observed,
        collector.injected_count,
        collector.delivered_count,
        sorted(collector.records),
    )


@st.composite
def quiescent_spec_strategy(draw) -> dict:
    """A config whose execution mixes quiescent spans with bursts."""
    algorithm = draw(st.sampled_from(SILENCE_CAPABLE))
    n = draw(st.integers(min_value=4, max_value=8))
    params = {"n": n}
    if algorithm in ("k-cycle", "k-clique", "k-subsets"):
        params["k"] = draw(st.integers(min_value=2, max_value=min(4, n - 1)))
    adversary, adversary_params = draw(
        st.sampled_from(
            [
                # Long idle stretches between maximal bursts: the span
                # fast path's bread and butter.
                ("bursty", {"rho": 0.1, "beta": 4.0, "idle_rounds": 37}),
                ("bursty", {"rho": 0.3, "beta": 2.0, "idle_rounds": 11}),
                # Trickle traffic: short spans between single packets.
                ("single-target", {"rho": 0.05, "beta": 1.0}),
                # Stochastic gaps, both RNG protocol versions.
                ("random", {"rho": 0.08, "beta": 2.0, "seed": 3}),
                ("random", {"rho": 0.08, "beta": 2.0, "seed": 3, "rng_version": 2}),
                ("hotspot", {"rho": 0.1, "beta": 1.0, "seed": 5, "rng_version": 2}),
                # Fully quiescent run: one span from round 0 to the end.
                ("no-injection", {}),
            ]
        )
    )
    return dict(
        algorithm=algorithm,
        algorithm_params=params,
        adversary=adversary,
        adversary_params=adversary_params,
        rounds=draw(st.integers(min_value=30, max_value=500)),
        enforce_energy_cap=False,
        plan_chunk=draw(st.sampled_from([13, 64, 4096])),
    )


@given(common=quiescent_spec_strategy())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_span_skipping_kernel_matches_reference_and_per_round_kernel(common):
    plan_chunk = common.pop("plan_chunk")
    skipping = execute_spec(
        RunSpec(engine="kernel", plan_chunk=plan_chunk, **common)
    )
    per_round = execute_spec(
        RunSpec(
            engine="kernel",
            plan_chunk=plan_chunk,
            quiescence_skip=False,
            **common,
        )
    )
    block = execute_spec(RunSpec(engine="block", plan_chunk=plan_chunk, **common))
    reference = execute_spec(RunSpec(engine="reference", **common))

    assert skipping.summary.as_dict() == reference.summary.as_dict()
    assert _collector_state(skipping.collector) == _collector_state(
        reference.collector
    )
    assert _collector_state(skipping.collector) == _collector_state(
        per_round.collector
    )
    # The compiled-block engine elides the same quiescent spans inside
    # its blocks; every algorithm in SILENCE_CAPABLE has a block driver.
    assert block.summary.as_dict() == reference.summary.as_dict()
    assert _collector_state(block.collector) == _collector_state(
        reference.collector
    )
    assert (
        skipping.energy.total_station_rounds
        == reference.energy.total_station_rounds
    )
    assert skipping.energy.max_awake == reference.energy.max_awake
    assert block.energy.total_station_rounds == reference.energy.total_station_rounds
    assert block.energy.max_awake == reference.energy.max_awake


def _build_kernel(common, plan_chunk=64, engine_cls=KernelEngine, **config_kwargs):
    algorithm = make_algorithm(common["algorithm"], **common["algorithm_params"])
    adversary = make_adversary(common["adversary"], **common["adversary_params"])
    adversary.bind(algorithm.n, PacketFactory())
    config = EngineConfig(
        enforce_energy_cap=False, plan_chunk=plan_chunk, **config_kwargs
    )
    return engine_cls(
        algorithm.build_controllers(),
        adversary,
        config=config,
        schedule=algorithm.oblivious_schedule(),
    )


BURSTY_COMMON = dict(
    algorithm="k-cycle",
    algorithm_params={"n": 8, "k": 3},
    adversary="bursty",
    adversary_params={"rho": 0.1, "beta": 6.0, "idle_rounds": 50},
)


def test_negotiation_engages_for_every_declared_algorithm():
    for algorithm in SILENCE_CAPABLE:
        params = {"n": 6}
        if algorithm in ("k-cycle", "k-clique", "k-subsets"):
            params["k"] = 3
        common = dict(
            BURSTY_COMMON, algorithm=algorithm, algorithm_params=params
        )
        engine = _build_kernel(common)
        assert engine.uses_quiescence_skipping, algorithm
        engine.run(400)
        assert engine.quiescent_rounds_elided > 0, algorithm


def test_holdouts_do_not_negotiate_span_skipping():
    for algorithm, params in [
        ("count-hop", {"n": 6}),
        ("orchestra", {"n": 6}),
        ("adjust-window", {"n": 4}),
    ]:
        common = dict(
            BURSTY_COMMON, algorithm=algorithm, algorithm_params=params
        )
        engine = _build_kernel(common)
        assert not engine.uses_quiescence_skipping, algorithm
        engine.run(200)
        assert engine.quiescent_rounds_elided == 0, algorithm


def test_quiescence_skip_config_knob_disables_the_fast_path():
    engine = _build_kernel(BURSTY_COMMON, quiescence_skip=False)
    assert not engine.uses_quiescence_skipping
    engine.run(300)
    assert engine.quiescent_rounds_elided == 0


@pytest.mark.parametrize("engine_cls", [KernelEngine, BlockEngine])
@pytest.mark.parametrize(
    "splits",
    [
        # Stops landing inside idle stretches (mid-span) and mid-chunk:
        # the second run() must resume from the cached plan remainder.
        (17, 60, 23, 400),
        (1, 1, 1, 497),
        (75, 75, 350),
        (499, 1),
    ],
)
def test_aborted_mid_span_run_resumes_from_plan_remainder(splits, engine_cls):
    reference = execute_spec(
        RunSpec(engine="reference", rounds=500, enforce_energy_cap=False, **BURSTY_COMMON)
    )
    engine = _build_kernel(BURSTY_COMMON, plan_chunk=64, engine_cls=engine_cls)
    assert sum(splits) == 500
    for piece in splits:
        engine.run(piece)
    assert engine.round_no == 500
    assert engine.quiescent_rounds_elided > 0
    assert _collector_state(engine.collector) == _collector_state(
        reference.collector
    )


def test_exception_mid_chunk_leaves_resumable_state():
    """An abort inside a chunk (factory blows up mid-burst) must leave the
    plan remainder cached so a resumed run replays — not re-plans — the
    rounds whose leaky-bucket budget was already consumed."""

    class Boom(RuntimeError):
        pass

    class ExplodingFactory(PacketFactory):
        """Raises on the first packet of the first burst at round >= 150.

        Detonating on a round's *first* materialisation aborts at a clean
        round boundary (nothing of the failing round was recorded), which
        is the granularity the kernel's resume contract covers.
        """

        def make(self, destination, injected_at, origin, content=None):
            if injected_at >= 150:
                raise Boom()
            return super().make(destination, injected_at, origin, content)

    algorithm = make_algorithm("k-cycle", n=8, k=3)
    adversary = make_adversary("bursty", rho=0.1, beta=6.0, idle_rounds=50)
    exploding = ExplodingFactory()
    adversary.bind(algorithm.n, exploding)
    engine = KernelEngine(
        algorithm.build_controllers(),
        adversary,
        config=EngineConfig(enforce_energy_cap=False, plan_chunk=64),
        schedule=algorithm.oblivious_schedule(),
    )
    with pytest.raises(Boom):
        engine.run(500)
    aborted_at = engine.round_no
    assert 0 < aborted_at < 500
    assert engine.quiescent_rounds_elided > 0
    # Swap in a working factory continuing the id space and finish the
    # horizon: the replayed remainder must line up with an unbroken
    # reference run.
    adversary.factory = PacketFactory(start=exploding.created)
    engine.run(500 - aborted_at)
    reference = execute_spec(
        RunSpec(engine="reference", rounds=500, enforce_energy_cap=False, **BURSTY_COMMON)
    )
    assert engine.collector.total_queue_series == reference.collector.total_queue_series
    assert engine.collector.outcome_counts == reference.collector.outcome_counts
    assert engine.collector.energy_series == reference.collector.energy_series
