"""Property-based tests: every adversary respects its declared (rho, beta) type."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    AdaptiveStarvationAdversary,
    AlternatingPairAdversary,
    BurstThenIdleAdversary,
    GroupLocalAdversary,
    HotspotAdversary,
    RoundRobinAdversary,
    SaturatingAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
    UniformRandomAdversary,
)
from repro.adversary.leaky_bucket import AdversaryType, verify_injection_record
from repro.channel.engine import AdversaryView

rates = st.floats(min_value=0.05, max_value=1.0)
bursts = st.floats(min_value=1.0, max_value=6.0)
sizes = st.integers(min_value=4, max_value=9)


def _drive(adversary, n, rounds):
    adversary.bind(n)
    view = AdversaryView(n=n)
    counts, pairs = [], []
    for t in range(rounds):
        injections = adversary.inject(t, view)
        counts.append(len(injections))
        pairs.extend((s, p.destination) for s, p in injections)
        view.awake_history.append(tuple(range(n)))
        view.round_no = t + 1
    return counts, pairs


ADVERSARY_BUILDERS = [
    lambda rho, beta: SingleTargetAdversary(rho, beta),
    lambda rho, beta: SingleSourceSprayAdversary(rho, beta),
    lambda rho, beta: RoundRobinAdversary(rho, beta),
    lambda rho, beta: AlternatingPairAdversary(rho, beta),
    lambda rho, beta: SaturatingAdversary(rho, beta),
    lambda rho, beta: BurstThenIdleAdversary(rho, beta, idle_rounds=5),
    lambda rho, beta: GroupLocalAdversary(rho, beta, group_size=3),
    lambda rho, beta: UniformRandomAdversary(rho, beta, seed=11),
    lambda rho, beta: HotspotAdversary(rho, beta, seed=5),
    lambda rho, beta: AdaptiveStarvationAdversary(rho, beta),
]


@given(
    rho=rates,
    beta=bursts,
    n=sizes,
    builder_index=st.integers(0, len(ADVERSARY_BUILDERS) - 1),
    rounds=st.integers(5, 80),
)
@settings(max_examples=150, deadline=None)
def test_realised_injections_conform_to_declared_type(rho, beta, n, builder_index, rounds):
    adversary = ADVERSARY_BUILDERS[builder_index](rho, beta)
    counts, pairs = _drive(adversary, n, rounds)
    assert verify_injection_record(counts, AdversaryType(rho=rho, beta=beta))
    for source, destination in pairs:
        assert 0 <= source < n
        assert 0 <= destination < n
        assert source != destination


@given(rho=rates, beta=bursts, n=sizes, rounds=st.integers(10, 60))
@settings(max_examples=60, deadline=None)
def test_saturating_adversary_achieves_its_rate(rho, beta, n, rounds):
    """The saturating adversary should come within one burst of the envelope."""
    adversary = SaturatingAdversary(rho, beta)
    counts, _ = _drive(adversary, n, rounds)
    assert sum(counts) >= rho * rounds - 1
