"""Property tests: fault-injected sweeps are bit-identical to fault-free ones.

The fault-tolerance contract mirrors the engine-equivalence discipline
(lowered ≡ block ≡ kernel ≡ reference): whatever deterministic faults a
:class:`~repro.sim.faults.FaultPlan` injects — transient exceptions,
worker kills, cache corruption, stalls past a supervised deadline — a
supervised run must converge on exactly the results a fault-free run
computes, spec by spec, as long as ``max_retries >= fault_budget``.
Quarantine is the *only* permitted divergence, and only when the budget
is genuinely exhausted.

The CI fault-injection leg sets ``REPRO_FAULT_SEED`` to vary the
schedule across runs; locally the default seed keeps runs reproducible.
"""

import os

import pytest

from repro.sim import (
    ExecutionPolicy,
    FailedResult,
    FaultPlan,
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SweepManifest,
    execute_spec,
    spec_fragment,
    sweep,
    worst_case_over,
)

#: Seed for the injected fault schedules; the CI leg overrides it so every
#: pipeline run exercises a different (but fully replayable) schedule.
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "20190622"))


def _specs(count=4, rounds=200):
    return [
        RunSpec(
            algorithm="count-hop",
            algorithm_params={"n": 4},
            adversary="random",
            adversary_params={"rho": round(0.1 + 0.15 * i, 3), "beta": 2.0, "seed": 7},
            rounds=rounds,
            label=f"p{i}",
        )
        for i in range(count)
    ]


def _baseline(specs):
    return {s.spec_hash(): execute_spec(s).summary for s in specs}


def _assert_equivalent(specs, results, baseline):
    assert len(results) == len(specs)
    for spec, result in zip(specs, results):
        assert not result.failed, f"{spec.label} quarantined: {result.describe()}"
        assert result.summary == baseline[spec.spec_hash()]


class TestSerialEquivalence:
    def test_transient_faults_converge_to_fault_free_results(self):
        specs = _specs()
        baseline = _baseline(specs)
        plan = FaultPlan(seed=FAULT_SEED, transient_rate=0.8, fault_budget=2)
        policy = ExecutionPolicy(max_retries=3, backoff_base=0.0, fault_plan=plan)
        with ParallelExecutor(1, policy=policy) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)

    def test_kill_faults_degrade_to_transients_serially(self):
        specs = _specs()
        baseline = _baseline(specs)
        plan = FaultPlan(seed=FAULT_SEED + 1, kill_rate=0.8, fault_budget=2)
        policy = ExecutionPolicy(max_retries=3, backoff_base=0.0, fault_plan=plan)
        with ParallelExecutor(1, policy=policy) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)

    def test_mixed_fault_cocktail(self):
        specs = _specs()
        baseline = _baseline(specs)
        plan = FaultPlan(
            seed=FAULT_SEED + 2,
            kill_rate=0.3,
            transient_rate=0.3,
            stall_rate=0.3,
            stall_seconds=0.0,
            fault_budget=3,
        )
        policy = ExecutionPolicy(max_retries=4, backoff_base=0.0, fault_plan=plan)
        with ParallelExecutor(1, policy=policy) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)

    def test_fault_free_supervised_run_matches_unsupervised(self):
        specs = _specs(count=3)
        baseline = _baseline(specs)
        with ParallelExecutor(1, policy=ExecutionPolicy()) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)
        assert executor.stats.retries == 0


class TestCacheCorruption:
    def test_corrupted_entries_are_quarantined_and_recomputed(self, tmp_path):
        specs = _specs()
        baseline = _baseline(specs)
        writer = ResultCache(tmp_path)
        for spec in specs:
            writer.put(spec, execute_spec(spec))

        plan = FaultPlan(seed=FAULT_SEED + 3, corrupt_rate=0.7, fault_budget=1)
        cache = ResultCache(tmp_path, fault_plan=plan)
        policy = ExecutionPolicy(max_retries=2, backoff_base=0.0)
        with ParallelExecutor(1, cache=cache, policy=policy) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)
        expected_corrupt = sum(
            1 for s in specs if plan.corrupts_read(s.spec_hash(), 0)
        )
        assert cache.quarantined == expected_corrupt
        if expected_corrupt:
            assert cache.quarantine_dir.is_dir()
            stats = cache.clear()
            assert stats.quarantined == expected_corrupt

    def test_recomputed_results_repopulate_the_cache(self, tmp_path):
        specs = _specs(count=2)
        writer = ResultCache(tmp_path)
        for spec in specs:
            writer.put(spec, execute_spec(spec))
        plan = FaultPlan(seed=FAULT_SEED, corrupt_rate=1.0, fault_budget=1)
        cache = ResultCache(tmp_path, fault_plan=plan)
        with ParallelExecutor(1, cache=cache, policy=ExecutionPolicy()) as executor:
            executor.run(specs)
        # Budget spent: a fresh cache (no injector) now hits cleanly.
        clean = ResultCache(tmp_path)
        for spec in specs:
            assert clean.get(spec) is not None
        assert clean.hits == len(specs)


class TestQuarantine:
    def test_poison_specs_quarantine_without_aborting(self):
        specs = _specs()
        baseline = _baseline(specs)
        # Budget far beyond the retry allowance: the first spec's coin is
        # forced to fire every attempt, so it must land as a FailedResult
        # while every other spec still completes exactly.
        plan = FaultPlan(seed=FAULT_SEED, transient_rate=1.0, fault_budget=100)
        policy = ExecutionPolicy(max_retries=2, backoff_base=0.0, fault_plan=plan)
        with ParallelExecutor(1, policy=policy) as executor:
            results = executor.run(specs)
        assert all(isinstance(r, FailedResult) for r in results)
        assert all(r.attempts == 3 for r in results)
        assert executor.stats.quarantined == len(specs)
        # The same batch re-run without faults is untouched by the
        # quarantine history.
        with ParallelExecutor(1, policy=ExecutionPolicy()) as executor:
            _assert_equivalent(specs, executor.run(specs), baseline)

    def test_worst_case_over_skips_quarantined_with_a_warning(self):
        # Rate 1.0 with a deep budget poisons every member of the family:
        # there is no worst case to report, which must be an explicit
        # error, never a silently empty max().
        plan = FaultPlan(seed=FAULT_SEED, transient_rate=1.0, fault_budget=100)
        policy = ExecutionPolicy(max_retries=1, backoff_base=0.0, fault_plan=plan)
        with pytest.raises(RuntimeError, match="every run in the family"):
            worst_case_over(
                lambda: spec_fragment("count-hop", n=4),
                [lambda: spec_fragment("single-target", rho=0.3, beta=1.0)],
                rounds=150,
                policy=policy,
            )

    def test_worst_case_over_warns_and_skips_partial_quarantine(self):
        # A family where exactly one member is poisoned: an out-of-range
        # destination makes the spec fail on every attempt with a real
        # (non-injected) error, while the rest of the family completes.
        good = [
            (lambda rho: lambda: spec_fragment("single-target", rho=rho, beta=1.0))(r)
            for r in (0.2, 0.5)
        ]
        poison = lambda: spec_fragment(  # noqa: E731
            "single-target", rho=0.3, beta=1.0, source=3, destination=99
        )
        with pytest.warns(RuntimeWarning, match="skipping 1 quarantined"):
            worst, results = worst_case_over(
                lambda: spec_fragment("count-hop", n=4),
                good + [poison],
                rounds=150,
                policy=ExecutionPolicy(max_retries=1, backoff_base=0.0),
            )
        assert not worst.failed
        assert sum(1 for r in results if r.failed) == 1
        assert len(results) == 3


class TestManifestResume:
    def test_sweep_checkpoints_and_resumes(self, tmp_path):
        rates = [0.1, 0.3, 0.5]
        path = tmp_path / "manifest.json"
        cache = ResultCache(tmp_path / "cache")

        def run_sweep(resume):
            return sweep(
                "resume-test",
                "rho",
                rates,
                lambda rho: spec_fragment("count-hop", n=4),
                lambda rho: spec_fragment("random", rho=rho, beta=2.0, seed=7),
                200,
                cache=cache,
                policy=ExecutionPolicy(max_retries=1, backoff_base=0.0),
                manifest=SweepManifest(path, resume=resume),
            )

        first = run_sweep(resume=False)
        assert not first.failed_points()
        recorded = SweepManifest(path, resume=True)
        assert recorded.counts() == {"pending": 0, "done": 3, "failed": 0}

        # Resuming replays entirely from the cache: same points, and the
        # manifest still shows every spec done.
        second = run_sweep(resume=True)
        assert [p.result.summary for p in second.points] == [
            p.result.summary for p in first.points
        ]
        assert SweepManifest(path, resume=True).counts()["done"] == 3

    def test_resume_skips_previously_quarantined_specs(self, tmp_path):
        specs = _specs(count=3)
        path = tmp_path / "manifest.json"
        poison_plan = FaultPlan(seed=FAULT_SEED, transient_rate=1.0, fault_budget=100)
        policy = ExecutionPolicy(
            max_retries=1, backoff_base=0.0, fault_plan=poison_plan
        )
        with ParallelExecutor(
            1, policy=policy, manifest=SweepManifest(path)
        ) as executor:
            first = executor.run(specs)
        assert all(isinstance(r, FailedResult) for r in first)

        # Resume without faults: recorded failures come back as
        # FailedResults immediately, with no new attempts burned.
        manifest = SweepManifest(path, resume=True)
        with ParallelExecutor(
            1, policy=ExecutionPolicy(), manifest=manifest
        ) as executor:
            second = executor.run(specs)
            assert executor.stats.resumed_failures == len(specs)
            assert executor.stats.retries == 0
        for before, after in zip(first, second):
            assert isinstance(after, FailedResult)
            assert after.error_type == before.error_type
            assert after.attempts == before.attempts

    def test_mid_sweep_resume_completes_the_remainder(self, tmp_path):
        specs = _specs(count=4)
        baseline = _baseline(specs)
        path = tmp_path / "manifest.json"
        cache = ResultCache(tmp_path / "cache")

        # Simulate an interrupted sweep: the first half finished (cached +
        # recorded done), the rest never ran.
        manifest = SweepManifest(path)
        for spec in specs[:2]:
            cache.put(spec, execute_spec(spec))
            manifest.record_done(spec)
        for spec in specs[2:]:
            manifest.record_pending(spec)

        resumed = SweepManifest(path, resume=True)
        with ParallelExecutor(
            1, cache=cache, policy=ExecutionPolicy(), manifest=resumed
        ) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)
        assert cache.hits == 2  # the finished half was not re-executed
        assert SweepManifest(path, resume=True).counts()["done"] == 4


class TestSpecHashInvariance:
    def test_fault_plan_never_enters_spec_identity(self):
        spec = _specs(count=1)[0]
        plan = FaultPlan(seed=FAULT_SEED, transient_rate=0.5, fault_budget=2)
        import dataclasses

        stamped = dataclasses.replace(spec, fault_plan=plan.stamp(1))
        assert stamped.spec_hash() == spec.spec_hash()
        assert stamped.canonical_json() == spec.canonical_json()
        assert "fault_plan" not in spec.identity_dict()
        # ... but it does round-trip to worker processes.
        rebuilt = RunSpec.from_dict(stamped.to_dict())
        assert rebuilt.fault_plan == stamped.fault_plan

    def test_policy_knobs_never_change_spec_hashes(self):
        specs = _specs(count=2)
        hashes = [s.spec_hash() for s in specs]
        plan = FaultPlan(seed=FAULT_SEED, transient_rate=0.9, fault_budget=1)
        policy = ExecutionPolicy(max_retries=2, backoff_base=0.0, fault_plan=plan)
        with ParallelExecutor(1, policy=policy) as executor:
            executor.run(specs)
        assert [s.spec_hash() for s in specs] == hashes


@pytest.mark.parallel
class TestParallelFaultTolerance:
    def test_worker_kills_respawn_the_pool_and_converge(self):
        specs = _specs(count=6)
        baseline = _baseline(specs)
        plan = FaultPlan(seed=FAULT_SEED, kill_rate=0.4, fault_budget=1)
        policy = ExecutionPolicy(max_retries=2, backoff_base=0.0, fault_plan=plan)
        with ParallelExecutor(2, policy=policy) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)
        expected_kills = sum(
            1 for s in specs if plan.worker_fault(s.spec_hash(), 0) == "kill"
        )
        if expected_kills:
            assert executor.stats.pool_respawns >= 1

    def test_parallel_transients_converge(self):
        specs = _specs(count=6)
        baseline = _baseline(specs)
        plan = FaultPlan(seed=FAULT_SEED + 7, transient_rate=0.7, fault_budget=2)
        policy = ExecutionPolicy(max_retries=3, backoff_base=0.0, fault_plan=plan)
        with ParallelExecutor(2, policy=policy) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)

    @pytest.mark.slow
    def test_stalls_past_the_deadline_time_out_and_converge(self):
        specs = _specs(count=4, rounds=100)
        baseline = _baseline(specs)
        plan = FaultPlan(
            seed=FAULT_SEED, stall_rate=0.6, stall_seconds=30.0, fault_budget=1
        )
        policy = ExecutionPolicy(
            max_retries=2,
            spec_timeout=1.5,
            backoff_base=0.0,
            fault_plan=plan,
        )
        with ParallelExecutor(2, chunk_size=1, policy=policy) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)
        expected_stalls = sum(
            1 for s in specs if plan.worker_fault(s.spec_hash(), 0) == "stall"
        )
        assert executor.stats.timeouts >= expected_stalls

    def test_repeatedly_dying_pool_degrades_to_serial(self):
        specs = _specs(count=6)
        baseline = _baseline(specs)
        # Kills on every attempt up to a deep budget: the pool breaks
        # until the degrade threshold, then the serial path (where kills
        # become transients) must still converge.
        plan = FaultPlan(seed=FAULT_SEED, kill_rate=1.0, fault_budget=4)
        policy = ExecutionPolicy(
            max_retries=5,
            backoff_base=0.0,
            fault_plan=plan,
            serial_degrade_after=2,
        )
        with ParallelExecutor(2, policy=policy) as executor:
            results = executor.run(specs)
        _assert_equivalent(specs, results, baseline)
        assert executor.stats.serial_degraded
        assert executor.stats.pool_respawns >= 2
