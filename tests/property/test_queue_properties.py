"""Property-based tests for PacketQueue invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.packet import Packet
from repro.core.queues import PacketQueue


def _packet(i: int, dest: int) -> Packet:
    return Packet(destination=dest, injected_at=0, origin=0, packet_id=i)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 4)),
        st.tuples(st.just("push_old"), st.integers(0, 4)),
        st.tuples(st.just("age"), st.just(0)),
        st.tuples(st.just("pop_any"), st.just(0)),
        st.tuples(st.just("pop_old"), st.just(0)),
        st.tuples(st.just("pop_for"), st.integers(0, 4)),
    ),
    max_size=120,
)


@given(ops=operations)
@settings(max_examples=150, deadline=None)
def test_counts_always_consistent(ops):
    """old_count + new_count == len(queue) and never negative, under any op mix."""
    queue = PacketQueue()
    next_id = 0
    live: set[int] = set()
    for op, arg in ops:
        if op == "push":
            queue.push(_packet(next_id, arg))
            live.add(next_id)
            next_id += 1
        elif op == "push_old":
            queue.push_old(_packet(next_id, arg))
            live.add(next_id)
            next_id += 1
        elif op == "age":
            queue.age_all()
        elif op == "pop_any" and len(queue):
            live.discard(queue.pop_any().packet_id)
        elif op == "pop_old" and queue.old_count:
            live.discard(queue.pop_old().packet_id)
        elif op == "pop_for":
            popped = queue.pop_any_for(arg)
            if popped is not None:
                assert popped.destination == arg
                live.discard(popped.packet_id)
        assert queue.old_count + queue.new_count == len(queue)
        assert len(queue) == len(live)
        assert {p.packet_id for p in queue} == live


@given(destinations=st.lists(st.integers(0, 5), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_per_destination_counts_sum_to_total(destinations):
    queue = PacketQueue()
    for i, dest in enumerate(destinations):
        queue.push(_packet(i, dest))
    assert sum(queue.count_for(d) for d in range(6)) == len(queue)
    queue.age_all()
    assert sum(queue.count_old_for(d) for d in range(6)) == len(queue)


@given(destinations=st.lists(st.integers(0, 5), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_aging_preserves_fifo_order(destinations):
    """age_all never reorders packets relative to each other."""
    queue = PacketQueue()
    packets = [_packet(i, dest) for i, dest in enumerate(destinations)]
    for p in packets[: len(packets) // 2]:
        queue.push(p)
    queue.age_all()
    for p in packets[len(packets) // 2 :]:
        queue.push(p)
    queue.age_all()
    drained = [queue.pop_old() for _ in range(len(packets))]
    assert drained == packets


@given(destinations=st.lists(st.integers(0, 3), min_size=1, max_size=40),
       target=st.integers(0, 3))
@settings(max_examples=100, deadline=None)
def test_peek_matches_subsequent_pop(destinations, target):
    queue = PacketQueue()
    for i, dest in enumerate(destinations):
        queue.push(_packet(i, dest))
    queue.age_all()
    peeked = queue.peek_old_for(target)
    popped = queue.pop_old_for(target)
    assert peeked is popped
