#!/usr/bin/env python3
"""Adversary showcase: leaky-bucket traffic models and worst-case search.

The paper's adversary is an abstraction: *any* injection pattern that stays
within rho*t + beta per window.  A simulation can only ever exercise a
family of concrete patterns, so the harness ships a spectrum of them —
deterministic floods, bursty on/off sources, seeded stochastic mixes and
schedule-aware lower-bound constructions — and reports worst-case metrics
over the family.

This example runs Count-Hop (energy cap 2) against each member of the
family at the same (rho, beta) type, showing how much the measured latency
depends on the traffic shape, and why the benchmarks report the maximum.
It also demonstrates trace record/replay: the worst pattern is captured
and replayed against the uncapped MBTF baseline for an apples-to-apples
comparison.

Run with:  python examples/adversary_showcase.py
"""

from repro import CountHop, run_simulation
from repro.adversary import (
    AlternatingPairAdversary,
    BurstThenIdleAdversary,
    RecordingAdversary,
    ReplayAdversary,
    RoundRobinAdversary,
    SingleSourceSprayAdversary,
    SingleTargetAdversary,
    UniformRandomAdversary,
)
from repro.protocols import MoveBigToFront

N = 7
RHO, BETA = 0.6, 2.0
ROUNDS = 8_000


def adversary_family():
    return {
        "single-target flood": SingleTargetAdversary(RHO, BETA),
        "single-source spray": SingleSourceSprayAdversary(RHO, BETA),
        "round-robin": RoundRobinAdversary(RHO, BETA),
        "alternating pair": AlternatingPairAdversary(RHO, BETA),
        "burst then idle": BurstThenIdleAdversary(RHO, BETA, idle_rounds=24),
        "uniform random": UniformRandomAdversary(RHO, BETA, seed=7),
    }


def main() -> None:
    print(f"Count-Hop, n = {N}, adversary type (rho={RHO}, beta={BETA}), {ROUNDS} rounds\n")
    print(f"{'adversary':<22} {'latency':>8} {'max queue':>10} {'delivered':>10}")
    print("-" * 54)

    results = {}
    for name, adversary in adversary_family().items():
        result = run_simulation(CountHop(N), adversary, ROUNDS)
        results[name] = result
        print(
            f"{name:<22} {result.latency:>8} {result.max_queue:>10} "
            f"{result.summary.delivered:>10}"
        )

    worst_name = max(results, key=lambda k: results[k].latency)
    print(f"\nworst pattern for Count-Hop: {worst_name} "
          f"(latency {results[worst_name].latency})")

    # Record the worst pattern and replay the identical injections against
    # the uncapped MBTF baseline.
    recorder = RecordingAdversary(dict(adversary_family())[worst_name])
    run_simulation(CountHop(N), recorder, ROUNDS)
    replay = ReplayAdversary(RHO, BETA, recorder.trace)
    baseline = run_simulation(MoveBigToFront(N), replay, ROUNDS)

    capped = results[worst_name]
    print("\nsame traffic, two systems:")
    print(f"  Count-Hop (cap 2) : latency {capped.latency:>6}, "
          f"energy/round {capped.summary.energy_per_round:.2f}")
    print(f"  MBTF (cap {N})     : latency {baseline.latency:>6}, "
          f"energy/round {baseline.summary.energy_per_round:.2f}")
    ratio = capped.summary.energy_per_round / max(baseline.summary.energy_per_round, 1e-9)
    print(f"\nCount-Hop uses {100 * ratio:.0f}% of the baseline's energy per round, "
          "at the cost of the extra latency shown above.")


if __name__ == "__main__":
    main()
