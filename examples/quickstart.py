#!/usr/bin/env python3
"""Quickstart: route adversarial traffic on an energy-capped shared channel.

This example builds the smallest interesting scenario from the paper:
nine stations share a multiple access channel, at most three of them may
be switched on per round (energy cap k = 3), and an adversary injects
packets at 15% of the channel capacity.  We run the paper's k-Cycle
algorithm (Section 5), print the headline metrics, and compare the
measured latency against the paper's bound (32 + beta) * n from Table 1.

Run with:  python examples/quickstart.py
"""

from repro import make_algorithm, run_simulation
from repro.adversary import SingleSourceSprayAdversary
from repro.analysis import bounds

N = 9          # stations attached to the channel
K = 3          # energy cap: at most 3 stations switched on per round
RHO = 0.15     # adversarial injection rate (packets per round, amortised)
BETA = 2.0     # adversarial burstiness coefficient
ROUNDS = 20_000


def main() -> None:
    # 1. Pick an algorithm from the registry.  Every algorithm of the paper
    #    is available by name: orchestra, count-hop, adjust-window, k-cycle,
    #    k-clique, k-subsets (plus the uncapped baselines rrw, of-rrw, mbtf).
    algorithm = make_algorithm("k-cycle", n=N, k=K)
    print(f"algorithm : {algorithm.describe()}")

    # 2. Pick an adversary.  This one floods a single station with packets
    #    addressed to everybody else, staying within a (rho, beta) leaky
    #    bucket envelope.
    adversary = SingleSourceSprayAdversary(rho=RHO, beta=BETA, source=0)
    print(f"adversary : {adversary.describe()}")

    # 3. Run the synchronous simulation.  The engine enforces the energy cap
    #    and the exactly-once delivery rule while it runs.
    result = run_simulation(algorithm, adversary, ROUNDS)

    # 4. Inspect the outcome.
    summary = result.summary
    print(f"\nran {summary.rounds} rounds")
    print(f"  injected packets   : {summary.injected}")
    print(f"  delivered packets  : {summary.delivered}")
    print(f"  max queued packets : {summary.max_queue}")
    print(f"  worst packet delay : {summary.observed_latency} rounds")
    print(f"  energy per round   : {summary.energy_per_round:.2f} station-rounds"
          f" (cap {algorithm.energy_cap})")
    print(f"  stable             : {summary.stable}")

    # 5. Compare against the paper's Table 1 bound for k-Cycle.
    threshold = bounds.k_cycle_rate_threshold(N, K)
    latency_bound = bounds.k_cycle_latency_bound(N, BETA)
    print(f"\npaper (Table 1, k-Cycle row):")
    print(f"  admissible rates   : rho < (k-1)/(n-1) = {threshold:.3f}"
          f"  (we injected rho = {RHO})")
    print(f"  latency bound      : (32 + beta) n = {latency_bound:.0f} rounds")
    verdict = "within" if summary.observed_latency <= latency_bound else "OUTSIDE"
    print(f"  measured latency   : {summary.observed_latency} rounds ({verdict} the bound)")


if __name__ == "__main__":
    main()
