#!/usr/bin/env python3
"""Regenerate Table 1 of the paper as a paper-vs-measured comparison.

Runs one scaled-down experiment per Table 1 row (algorithms and
impossibility results) and prints the comparison table.  The full-size
versions live in ``benchmarks/`` and their measured values are recorded in
EXPERIMENTS.md; this script finishes in a couple of minutes on a laptop.

Run with:  python examples/regenerate_table1.py [--full]
"""

import argparse
import sys
import time

from repro.sim.experiments import regenerate_table1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full-size experiments used by the benchmark harness "
        "(several minutes) instead of the quick scaled-down versions",
    )
    args = parser.parse_args(argv)

    start = time.time()
    table, results = regenerate_table1(quick=not args.full)
    elapsed = time.time() - start

    print(table)
    ok = sum(1 for r in results if r.shape_ok)
    print(f"\n{ok}/{len(results)} experiments match the paper's qualitative claims "
          f"({elapsed:.0f}s).")
    return 0 if ok == len(results) else 1


if __name__ == "__main__":
    sys.exit(main())
