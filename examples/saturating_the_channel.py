#!/usr/bin/env python3
"""Saturating the channel: why the energy cap 3 matters (Sections 3.1-3.2).

The paper's headline result is a pair of statements:

* **Orchestra** keeps queues bounded at the maximum possible injection
  rate rho = 1 while switching on only *three* stations per round
  (Theorem 1), and
* **no algorithm whatsoever** can do this with only *two* stations per
  round (Theorem 2).

This example demonstrates both sides empirically.  The same saturating
adversary (one packet injected every round, forever) is thrown at
Orchestra (energy cap 3) and at Count-Hop (energy cap 2, universal for
every rate *below* 1).  Orchestra's queues stay flat near 2n^3; Count-Hop's
grow linearly without bound.

Run with:  python examples/saturating_the_channel.py
"""

from repro import CountHop, Orchestra, run_simulation
from repro.adversary import AdaptiveStarvationAdversary, SaturatingAdversary
from repro.analysis import bounds
from repro.sim.reporting import queue_trajectory_sparkline

N = 6
BETA = 2.0
ROUNDS = 12_000


def main() -> None:
    print(f"system: n = {N} stations, adversary rate rho = 1.0, beta = {BETA}, "
          f"{ROUNDS} rounds\n")

    # --- Orchestra: energy cap 3, stable at rate 1 -------------------------
    orchestra = run_simulation(
        Orchestra(N), SaturatingAdversary(1.0, BETA), ROUNDS
    )
    bound = bounds.orchestra_queue_bound(N, BETA)
    print("Orchestra (energy cap 3)")
    print(f"  queue trajectory : {queue_trajectory_sparkline(orchestra)}")
    print(f"  max queue        : {orchestra.max_queue}  (paper bound 2n^3+beta = {bound:.0f})")
    print(f"  energy per round : {orchestra.summary.energy_per_round:.2f}")
    print(f"  verdict          : {'stable' if orchestra.stable else 'UNSTABLE'}\n")

    # --- Count-Hop: energy cap 2, provably cannot survive rate 1 -----------
    count_hop = run_simulation(
        CountHop(N), SaturatingAdversary(1.0, BETA), ROUNDS
    )
    print("Count-Hop (energy cap 2) under the same traffic")
    print(f"  queue trajectory : {queue_trajectory_sparkline(count_hop)}")
    print(f"  max queue        : {count_hop.max_queue} and growing "
          f"({count_hop.summary.queue_growth_rate:+.3f} packets/round)")
    print(f"  verdict          : {'stable' if count_hop.stable else 'UNSTABLE'}\n")

    # --- The adaptive Theorem-2 adversary does it too ----------------------
    adaptive = run_simulation(
        CountHop(N), AdaptiveStarvationAdversary(1.0, BETA), ROUNDS
    )
    print("Count-Hop vs the adaptive starvation adversary of Theorem 2")
    print(f"  queue trajectory : {queue_trajectory_sparkline(adaptive)}")
    print(f"  verdict          : {'stable' if adaptive.stable else 'UNSTABLE'}")

    print("\nConclusion: with one extra switched-on station per round "
          "(3 instead of 2), maximum throughput becomes achievable — "
          "exactly the separation the paper proves.")


if __name__ == "__main__":
    main()
