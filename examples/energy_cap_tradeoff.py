#!/usr/bin/env python3
"""The energy/throughput trade-off of energy-oblivious routing (Sections 5-6).

An energy-oblivious algorithm fixes its on/off schedule in advance; the
paper shows its achievable injection rate is governed by the energy cap k:

* k-Cycle handles rates up to (k-1)/(n-1) and no oblivious algorithm can
  exceed k/n (Theorems 5 and 6);
* direct oblivious algorithms are limited to k(k-1)/(n(n-1)) — which
  k-Subsets attains exactly (Theorems 8 and 9).

This example sweeps the energy cap k for a fixed system of n = 12 stations
and reports, for each k, the paper's thresholds and the simulated fate of
k-Cycle just below its guarantee and just above the impossibility bound.
It also contrasts energy per delivered packet with the uncapped RRW
baseline: the price of staying below the cap.

Run with:  python examples/energy_cap_tradeoff.py
"""

from repro import KCycle, run_simulation
from repro.adversary import LeastOnStationAdversary, SingleSourceSprayAdversary
from repro.analysis import bounds
from repro.protocols import RoundRobinWithholding

N = 12
BETA = 1.0
ROUNDS = 15_000


def main() -> None:
    print(f"system: n = {N} stations, {ROUNDS} rounds per configuration\n")
    header = (
        f"{'k':>3} | {'guarantee (k-1)/(n-1)':>22} | {'limit k/n':>10} | "
        f"{'below guarantee':>16} | {'above limit':>12} | {'E/round':>8}"
    )
    print(header)
    print("-" * len(header))

    for k in (2, 3, 4, 6):
        guarantee = bounds.k_cycle_rate_threshold(N, k)
        limit = bounds.oblivious_rate_upper_bound(N, k)

        # Just below the guaranteed rate: must be stable.
        below = run_simulation(
            KCycle(N, k),
            SingleSourceSprayAdversary(0.7 * guarantee, BETA),
            ROUNDS,
        )

        # Above the k/n impossibility bound: the schedule-aware adversary of
        # Theorem 6 floods the station the schedule starves.
        schedule = KCycle(N, k).oblivious_schedule()
        adversary = LeastOnStationAdversary(
            min(1.0, 1.3 * limit), BETA, schedule, horizon=schedule.period_length
        )
        above = run_simulation(KCycle(N, k), adversary, ROUNDS)

        print(
            f"{k:>3} | {guarantee:>22.3f} | {limit:>10.3f} | "
            f"{'stable' if below.stable else 'UNSTABLE':>16} | "
            f"{'diverges' if not above.stable else 'stable?!':>12} | "
            f"{below.summary.energy_per_round:>8.2f}"
        )

    # The uncapped baseline for contrast: fast, but burns n station-rounds per round.
    rrw = run_simulation(
        RoundRobinWithholding(N),
        SingleSourceSprayAdversary(0.5, BETA),
        ROUNDS,
    )
    print(
        f"\nuncapped RRW baseline: latency {rrw.latency} rounds, "
        f"energy {rrw.summary.energy_per_round:.1f} station-rounds/round "
        f"({rrw.summary.energy_per_delivery:.1f} per delivered packet)"
    )
    print(
        "\nReading the table: raising the cap k widens the admissible injection-rate\n"
        "range (the guarantee column grows with k), while traffic above k/n defeats\n"
        "every oblivious schedule — the gap between those two columns is the price\n"
        "of obliviousness the paper leaves open."
    )


if __name__ == "__main__":
    main()
